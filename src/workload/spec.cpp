#include "workload/spec.h"

#include <charconv>
#include <cmath>
#include <limits>
#include <sstream>

namespace tempofair::workload {

namespace {

[[nodiscard]] double parse_num(std::string_view text, std::string_view what) {
  double v = 0.0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), v);
  if (ec != std::errc{} || ptr != text.data() + text.size() ||
      !std::isfinite(v)) {
    throw SpecError("workload spec: bad number '" + std::string(text) +
                    "' for " + std::string(what));
  }
  return v;
}

[[nodiscard]] std::string num_text(double v) {
  std::ostringstream out;
  out.precision(std::numeric_limits<double>::max_digits10);
  out << v;
  return out.str();
}

/// Splits on top-level commas: commas inside a '(...)' group (distribution
/// arguments) do not separate parameters.
[[nodiscard]] std::vector<std::string_view> split_params(std::string_view text) {
  std::vector<std::string_view> parts;
  std::size_t start = 0;
  int depth = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '(') ++depth;
    if (text[i] == ')') --depth;
    if (text[i] == ',' && depth == 0) {
      parts.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  parts.push_back(text.substr(start));
  return parts;
}

}  // namespace

WorkloadSpec WorkloadSpec::parse(std::string_view text) {
  if (text.empty()) throw SpecError("workload spec: empty string");
  WorkloadSpec spec;
  const std::size_t colon = text.find(':');
  spec.kind = std::string(text.substr(0, colon));
  if (spec.kind.empty()) {
    throw SpecError("workload spec '" + std::string(text) + "': empty kind");
  }
  if (colon == std::string_view::npos) return spec;
  const std::string_view rest = text.substr(colon + 1);
  if (spec.kind == "trace") {
    // The remainder is a filesystem path, taken verbatim.
    if (rest.empty()) throw SpecError("workload spec 'trace:': missing path");
    spec.params.emplace_back("path", std::string(rest));
    return spec;
  }
  if (rest.empty()) return spec;
  for (const std::string_view part : split_params(rest)) {
    const std::size_t eq = part.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      throw SpecError("workload spec '" + std::string(text) +
                      "': expected key=value, got '" + std::string(part) + "'");
    }
    std::string key(part.substr(0, eq));
    if (spec.find(key) != nullptr) {
      throw SpecError("workload spec '" + std::string(text) +
                      "': duplicate parameter '" + key + "'");
    }
    spec.params.emplace_back(std::move(key), std::string(part.substr(eq + 1)));
  }
  return spec;
}

std::string WorkloadSpec::to_string() const {
  std::string out = kind;
  if (kind == "trace") {
    if (const std::string* path = find("path")) out += ":" + *path;
    return out;
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    out += (i == 0 ? ':' : ',');
    out += params[i].first + "=" + params[i].second;
  }
  return out;
}

const std::string* WorkloadSpec::find(std::string_view key) const noexcept {
  for (const auto& [k, v] : params) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string WorkloadSpec::get_string(std::string_view key,
                                     std::string fallback) const {
  const std::string* v = find(key);
  return v != nullptr ? *v : std::move(fallback);
}

double WorkloadSpec::get_double(std::string_view key, double fallback) const {
  const std::string* v = find(key);
  return v != nullptr ? parse_num(*v, key) : fallback;
}

long WorkloadSpec::get_int(std::string_view key, long fallback) const {
  const std::string* v = find(key);
  if (v == nullptr) return fallback;
  const double num = parse_num(*v, key);
  const long as_long = static_cast<long>(num);
  if (static_cast<double>(as_long) != num) {
    throw SpecError("workload spec: parameter '" + std::string(key) +
                    "' must be an integer, got '" + *v + "'");
  }
  return as_long;
}

std::uint64_t WorkloadSpec::seed() const {
  const long seed = get_int("seed", 1);
  if (seed < 0) {
    throw SpecError("workload spec: seed must be >= 0");
  }
  return static_cast<std::uint64_t>(seed);
}

SizeDist WorkloadSpec::dist() const {
  const std::string* v = find("dist");
  return v != nullptr ? parse_size_dist(*v) : SizeDist(ExponentialSize{1.0});
}

WorkloadSpec& WorkloadSpec::set(std::string key, std::string value) {
  for (auto& [k, v] : params) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  params.emplace_back(std::move(key), std::move(value));
  return *this;
}

WorkloadSpec& WorkloadSpec::set(std::string key, double value) {
  return set(std::move(key), num_text(value));
}

WorkloadSpec& WorkloadSpec::set(std::string key, long value) {
  return set(std::move(key), std::to_string(value));
}

WorkloadSpec WorkloadSpec::poisson(std::size_t n, double load,
                                   const SizeDist& dist, std::uint64_t seed,
                                   int machines) {
  WorkloadSpec spec;
  spec.kind = "poisson";
  spec.set("n", static_cast<long>(n));
  spec.set("load", load);
  spec.set("dist", size_dist_spec(dist));
  spec.set("seed", static_cast<long>(seed));
  if (machines != 1) spec.set("machines", static_cast<long>(machines));
  return spec;
}

WorkloadSpec WorkloadSpec::uniform(std::size_t n, double gap, double size,
                                   double start) {
  WorkloadSpec spec;
  spec.kind = "uniform";
  spec.set("n", static_cast<long>(n));
  spec.set("gap", gap);
  spec.set("size", size);
  if (start != 0.0) spec.set("start", start);
  return spec;
}

WorkloadSpec WorkloadSpec::bursty(std::size_t bursts, std::size_t per_burst,
                                  double gap, const SizeDist& dist,
                                  std::uint64_t seed) {
  WorkloadSpec spec;
  spec.kind = "bursty";
  spec.set("bursts", static_cast<long>(bursts));
  spec.set("per", static_cast<long>(per_burst));
  spec.set("gap", gap);
  spec.set("dist", size_dist_spec(dist));
  spec.set("seed", static_cast<long>(seed));
  return spec;
}

WorkloadSpec WorkloadSpec::mmpp(std::size_t n, double load, double burst,
                                double on, double off, const SizeDist& dist,
                                std::uint64_t seed, int machines) {
  WorkloadSpec spec;
  spec.kind = "mmpp";
  spec.set("n", static_cast<long>(n));
  spec.set("load", load);
  spec.set("burst", burst);
  spec.set("on", on);
  spec.set("off", off);
  spec.set("dist", size_dist_spec(dist));
  spec.set("seed", static_cast<long>(seed));
  if (machines != 1) spec.set("machines", static_cast<long>(machines));
  return spec;
}

WorkloadSpec WorkloadSpec::trace(std::string path) {
  WorkloadSpec spec;
  spec.kind = "trace";
  spec.params.emplace_back("path", std::move(path));
  return spec;
}

SizeDist parse_size_dist(std::string_view text) {
  std::string_view name = text;
  std::vector<double> args;
  if (const std::size_t open = text.find('('); open != std::string_view::npos) {
    if (text.back() != ')') {
      throw SpecError("size distribution '" + std::string(text) +
                      "': missing ')'");
    }
    name = text.substr(0, open);
    std::string_view body = text.substr(open + 1, text.size() - open - 2);
    if (body.empty()) {
      throw SpecError("size distribution '" + std::string(text) +
                      "': empty argument list (write the bare name '" +
                      std::string(name) + "' for defaults)");
    }
    while (!body.empty()) {
      std::size_t comma = body.find(',');
      if (comma == std::string_view::npos) comma = body.size();
      args.push_back(parse_num(body.substr(0, comma), "distribution argument"));
      body.remove_prefix(comma == body.size() ? comma : comma + 1);
    }
  }
  auto arg = [&](std::size_t i, double fallback) {
    return i < args.size() ? args[i] : fallback;
  };
  if (name == "fixed") return FixedSize{arg(0, 1.0)};
  if (name == "uniform") return UniformSize{arg(0, 0.5), arg(1, 1.5)};
  if (name == "exp") return ExponentialSize{arg(0, 1.0)};
  if (name == "pareto") return ParetoSize{arg(0, 1.8), arg(1, 0.5), arg(2, 0.0)};
  if (name == "bimodal") return BimodalSize{arg(0, 0.9), arg(1, 1.0), arg(2, 50.0)};
  throw SpecError("size distribution '" + std::string(text) +
                  "': unknown name '" + std::string(name) +
                  "' (fixed uniform exp pareto bimodal)");
}

std::string size_dist_spec(const SizeDist& dist) {
  struct Visitor {
    std::string operator()(const FixedSize& d) const {
      return "fixed(" + num_text(d.value) + ")";
    }
    std::string operator()(const UniformSize& d) const {
      return "uniform(" + num_text(d.lo) + "," + num_text(d.hi) + ")";
    }
    std::string operator()(const ExponentialSize& d) const {
      return "exp(" + num_text(d.mean) + ")";
    }
    std::string operator()(const ParetoSize& d) const {
      std::string out = "pareto(" + num_text(d.alpha) + "," + num_text(d.xmin);
      if (d.cap != 0.0) out += "," + num_text(d.cap);
      return out + ")";
    }
    std::string operator()(const BimodalSize& d) const {
      return "bimodal(" + num_text(d.p_small) + "," + num_text(d.small) + "," +
             num_text(d.large) + ")";
    }
  };
  return std::visit(Visitor{}, dist);
}

}  // namespace tempofair::workload
