#include "workload/stream.h"

#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace tempofair::workload {

namespace detail {

PoissonStream::PoissonStream(std::size_t n, double lambda, const SizeDist& dist,
                             Rng& rng)
    : n_(n), lambda_(lambda), dist_(&dist), rng_(&rng) {
  if (!(lambda > 0.0)) {
    throw std::invalid_argument("PoissonStream: lambda must be > 0");
  }
}

Job PoissonStream::next() {
  if (emitted_ == n_) {
    throw std::logic_error("PoissonStream: next() called past n()");
  }
  // Identical draw order to detail::poisson_stream(): inter-arrival gap,
  // then size.
  clock_ += rng_->exponential(1.0 / lambda_);
  const Job j{static_cast<JobId>(emitted_), clock_, draw_size(*dist_, *rng_)};
  ++emitted_;
  return j;
}

PoissonStream poisson_load_stream(std::size_t n, int machines,
                                  double utilization, const SizeDist& dist,
                                  Rng& rng) {
  if (!(utilization > 0.0) || utilization > 1.5) {
    throw std::invalid_argument(
        "poisson_load_stream: utilization outside (0, 1.5]");
  }
  if (machines < 1) {
    throw std::invalid_argument("poisson_load_stream: machines < 1");
  }
  const double lambda = utilization * machines / mean_size(dist);
  return PoissonStream(n, lambda, dist, rng);
}

InstanceRefStream::InstanceRefStream(const Instance& instance)
    : instance_(&instance) {
  const std::span<const JobId> order = instance.release_order();
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (order[i] != static_cast<JobId>(i)) {
      throw std::invalid_argument(
          "InstanceRefStream: job ids are not sequential in release order "
          "(job at release rank " + std::to_string(i) + " has id " +
          std::to_string(order[i]) + "); cannot stream without relabeling");
    }
  }
}

std::size_t InstanceRefStream::n() const noexcept { return instance_->n(); }

Job InstanceRefStream::next() {
  if (next_ == instance_->n()) {
    throw std::logic_error("InstanceRefStream: next() called past n()");
  }
  return instance_->job(static_cast<JobId>(next_++));
}

}  // namespace detail

Instance materialize(JobStream& stream) {
  std::vector<Job> jobs;
  jobs.reserve(stream.n());
  for (std::size_t i = 0; i < stream.n(); ++i) jobs.push_back(stream.next());
  return Instance::from_jobs(std::move(jobs));
}

}  // namespace tempofair::workload
