// WorkloadSource: the one interface every workload plugs into.
//
// A source is factory-constructed from a declarative WorkloadSpec
// (workload/spec.h) and can hand back the workload two ways:
//
//   * instance()  -- materialize everything (always available);
//   * stream()    -- a fresh JobStream drawing jobs lazily, when the kind
//                    supports it (streamable()), so the engine's fast path
//                    admits arrivals without ever holding the full instance.
//
// Sources are reusable: every stream()/instance() call re-derives the same
// jobs from the spec's seed, so two calls -- or a call here and one in a
// tempofaird replica -- agree bitwise.  This is what lets a spec string ride
// RunRequest.workload through bench experiments, the CLI tools, and SUBMIT
// frames and mean the same workload everywhere.
//
// Supported kinds (see builtin_workload_kinds() for the live list):
//
//   poisson:n=..,load=..,dist=..,seed=..[,machines=..][,weights=..]
//   mmpp:n=..,load=..,burst=..,on=..,off=..[,dist=..,seed=..,machines=..]
//   uniform:n=..,gap=..,size=..[,start=..]
//   bursty:bursts=..,per=..,gap=..[,dist=..,seed=..][,weights=..]
//   adv-rr-l2-hard:n=..            adv-srpt-starvation:stream=..[,big=..,gap=..]
//   adv-batch-stream:batch=..,stream=..[,gap=..,size=..]
//   adv-overload-pulse:pulses=..,burst=..[,machines=..]
//   adv-staircase:n=..             adv-geometric:levels=..[,spacing=..]
//   trace:<path>                   (CSV or binary columnar, sniffed)
//
// `weights=random|inv-size|prop-size` reweights a materialized kind via
// with_weights() (forces streamable() false).
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/engine.h"
#include "core/instance.h"
#include "core/job_stream.h"
#include "workload/spec.h"

namespace tempofair::workload {

class WorkloadSource {
 public:
  explicit WorkloadSource(WorkloadSpec spec) : spec_(std::move(spec)) {}
  virtual ~WorkloadSource() = default;
  WorkloadSource(const WorkloadSource&) = delete;
  WorkloadSource& operator=(const WorkloadSource&) = delete;

  /// The spec this source was built from.
  [[nodiscard]] const WorkloadSpec& spec() const noexcept { return spec_; }

  /// Exact job count (JobStream contract S1).
  [[nodiscard]] virtual std::size_t n() const = 0;

  /// Whether stream() is supported without materializing.
  [[nodiscard]] virtual bool streamable() const noexcept { return false; }

  /// A fresh lazily-drawing JobStream over the whole workload.  Throws
  /// std::logic_error when !streamable().
  [[nodiscard]] virtual std::unique_ptr<JobStream> stream();

  /// Materializes the workload (always available; streamable sources
  /// materialize by draining a fresh stream).
  [[nodiscard]] virtual Instance instance() = 0;

 private:
  WorkloadSpec spec_;
};

/// Builds the source named by `spec`.  Throws SpecError on an unknown kind,
/// an unknown parameter, or a semantically invalid value -- this is the one
/// validation path shared by CLI flags, SUBMIT frames, and programmatic
/// callers.
[[nodiscard]] std::unique_ptr<WorkloadSource> make_source(
    const WorkloadSpec& spec);
[[nodiscard]] std::unique_ptr<WorkloadSource> make_source(
    std::string_view spec_string);

/// Shorthand: make_source(spec)->instance().
[[nodiscard]] Instance make_instance(const WorkloadSpec& spec);
[[nodiscard]] Instance make_instance(std::string_view spec_string);

/// The kinds make_source() accepts, for usage messages.
[[nodiscard]] std::vector<std::string> builtin_workload_kinds();

/// Runs `request` on the workload named by request.workload: streams into
/// the fast path when the source and the request's policy both support it,
/// otherwise materializes and runs the generic loop.  This is exactly the
/// path a tempofaird spec submission takes, so a local run_spec() and a
/// daemon round trip produce identical schedules.  Throws SpecError when
/// request.workload is empty or invalid.
[[nodiscard]] RunResult run_spec(const RunRequest& request);

}  // namespace tempofair::workload
