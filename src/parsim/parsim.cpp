#include "parsim/parsim.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <string>

namespace tempofair::parsim {

namespace {

struct LivePar {
  JobId id;
  Time release;
  double attained = 0.0;
  std::size_t phase = 0;
  double phase_remaining = 0.0;
  const ParJob* job = nullptr;
};

[[noreturn]] void par_fail(const std::string& msg) {
  throw std::runtime_error("parsim::simulate_par: " + msg);
}

}  // namespace

ParDecision Equi::allocate(const ParContext& ctx) {
  ParDecision d;
  d.shares.assign(ctx.alive.size(),
                  ctx.capacity / static_cast<double>(ctx.alive.size()));
  return d;
}

Wequi::Wequi(double age_offset, double refresh_rel)
    : age_offset_(age_offset), refresh_rel_(refresh_rel) {
  if (!(age_offset > 0.0) || !(refresh_rel > 0.0)) {
    throw std::invalid_argument("Wequi: parameters must be > 0");
  }
}

ParDecision Wequi::allocate(const ParContext& ctx) {
  // Shares proportional to ages; no per-job cap in this setting (a parallel
  // phase can absorb arbitrarily many processors).
  double weight_sum = 0.0;
  double min_weight = std::numeric_limits<double>::infinity();
  std::vector<double> weights(ctx.alive.size());
  for (std::size_t i = 0; i < ctx.alive.size(); ++i) {
    weights[i] = (ctx.now - ctx.alive[i].release) + age_offset_;
    weight_sum += weights[i];
    min_weight = std::min(min_weight, weights[i]);
  }
  ParDecision d;
  d.shares.resize(ctx.alive.size());
  for (std::size_t i = 0; i < ctx.alive.size(); ++i) {
    d.shares[i] = ctx.capacity * weights[i] / weight_sum;
  }
  d.max_duration = refresh_rel_ * min_weight;
  return d;
}

LapsPar::LapsPar(double beta) : beta_(beta) {
  if (!(beta > 0.0) || beta > 1.0) {
    throw std::invalid_argument("LapsPar: beta must lie in (0, 1]");
  }
}

ParDecision LapsPar::allocate(const ParContext& ctx) {
  const std::size_t n = ctx.alive.size();
  const std::size_t share_count = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(beta_ * static_cast<double>(n))));
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  auto alive = ctx.alive;
  std::partial_sort(idx.begin(),
                    idx.begin() + static_cast<std::ptrdiff_t>(share_count),
                    idx.end(), [alive](std::size_t a, std::size_t b) {
                      if (alive[a].release != alive[b].release) {
                        return alive[a].release > alive[b].release;
                      }
                      return alive[a].id > alive[b].id;
                    });
  ParDecision d;
  d.shares.assign(n, 0.0);
  for (std::size_t i = 0; i < share_count; ++i) {
    d.shares[idx[i]] = ctx.capacity / static_cast<double>(share_count);
  }
  return d;
}

WlapsPar::WlapsPar(double beta, double age_offset, double refresh_rel)
    : beta_(beta), age_offset_(age_offset), refresh_rel_(refresh_rel) {
  if (!(beta > 0.0) || beta > 1.0) {
    throw std::invalid_argument("WlapsPar: beta must lie in (0, 1]");
  }
  if (!(age_offset > 0.0) || !(refresh_rel > 0.0)) {
    throw std::invalid_argument("WlapsPar: parameters must be > 0");
  }
}

ParDecision WlapsPar::allocate(const ParContext& ctx) {
  const std::size_t n = ctx.alive.size();
  const std::size_t share_count = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(beta_ * static_cast<double>(n))));
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  auto alive = ctx.alive;
  std::partial_sort(idx.begin(),
                    idx.begin() + static_cast<std::ptrdiff_t>(share_count),
                    idx.end(), [alive](std::size_t a, std::size_t b) {
                      if (alive[a].release != alive[b].release) {
                        return alive[a].release > alive[b].release;
                      }
                      return alive[a].id > alive[b].id;
                    });
  ParDecision d;
  d.shares.assign(n, 0.0);
  double weight_sum = 0.0;
  double min_weight = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < share_count; ++i) {
    const double w = (ctx.now - alive[idx[i]].release) + age_offset_;
    weight_sum += w;
    min_weight = std::min(min_weight, w);
  }
  for (std::size_t i = 0; i < share_count; ++i) {
    const double w = (ctx.now - alive[idx[i]].release) + age_offset_;
    d.shares[idx[i]] = ctx.capacity * w / weight_sum;
  }
  d.max_duration = refresh_rel_ * min_weight;
  return d;
}

ParDecision ParOptProxy::allocate(const ParContext& ctx) {
  // All processors to the parallel-phase job with least remaining phase
  // work; sequential phases progress for free.
  ParDecision d;
  d.shares.assign(ctx.alive.size(), 0.0);
  std::size_t best = ctx.alive.size();
  for (std::size_t i = 0; i < ctx.alive.size(); ++i) {
    if (!ctx.alive[i].kind_visible) {
      throw std::logic_error("ParOptProxy: phase kinds are hidden");
    }
    if (ctx.alive[i].current_kind != PhaseKind::kParallel) continue;
    if (best == ctx.alive.size() ||
        ctx.alive[i].phase_remaining < ctx.alive[best].phase_remaining) {
      best = i;
    }
  }
  if (best < ctx.alive.size()) d.shares[best] = ctx.capacity;
  return d;
}

std::vector<double> ParSchedule::flows() const {
  std::vector<double> out(completion.size());
  for (std::size_t i = 0; i < completion.size(); ++i) {
    out[i] = completion[i] - release[i];
  }
  return out;
}

ParSchedule simulate_par(std::span<const ParJob> jobs, ParPolicy& policy,
                         const ParSimOptions& options) {
  if (options.machines < 1) {
    throw std::invalid_argument("simulate_par: machines must be >= 1");
  }
  if (!(options.speed > 0.0)) {
    throw std::invalid_argument("simulate_par: speed must be > 0");
  }
  for (const ParJob& j : jobs) {
    if (j.phases.empty()) {
      throw std::invalid_argument("simulate_par: job with no phases");
    }
    for (const Phase& p : j.phases) {
      if (!(p.work > 0.0) || !std::isfinite(p.work)) {
        throw std::invalid_argument("simulate_par: non-positive phase work");
      }
    }
  }

  ParSchedule schedule;
  const std::size_t n = jobs.size();
  schedule.release.assign(n, 0.0);
  schedule.completion.assign(n, kInfiniteTime);
  for (std::size_t i = 0; i < n; ++i) {
    if (jobs[i].id >= n) {
      throw std::invalid_argument("simulate_par: ids must be 0..n-1");
    }
    schedule.release[jobs[i].id] = jobs[i].release;
  }
  if (jobs.empty()) return schedule;

  // Arrival order.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (jobs[a].release != jobs[b].release) {
      return jobs[a].release < jobs[b].release;
    }
    return jobs[a].id < jobs[b].id;
  });

  std::vector<LivePar> alive;
  std::vector<ParAliveJob> views;
  std::size_t next_arrival = 0;
  Time now = jobs[order[0]].release;
  const double capacity = options.speed * options.machines;
  const double tol = 1e-7 * std::max(1.0, capacity);
  const bool clairvoyant = policy.clairvoyant();

  auto admit = [&](Time t) {
    while (next_arrival < n && jobs[order[next_arrival]].release <= t + kAbsEps) {
      const ParJob& j = jobs[order[next_arrival]];
      LivePar lp{j.id, j.release, 0.0, 0, j.phases[0].work, &j};
      auto pos = std::lower_bound(
          alive.begin(), alive.end(), lp,
          [](const LivePar& a, const LivePar& b) { return a.id < b.id; });
      alive.insert(pos, lp);
      ++next_arrival;
    }
  };
  admit(now);

  std::size_t steps = 0;
  while (!alive.empty() || next_arrival < n) {
    if (++steps > options.max_steps) par_fail("exceeded max_steps");
    if (alive.empty()) {
      now = jobs[order[next_arrival]].release;
      admit(now);
      continue;
    }

    views.clear();
    const double nan = std::numeric_limits<double>::quiet_NaN();
    for (const LivePar& j : alive) {
      ParAliveJob v;
      v.id = j.id;
      v.release = j.release;
      v.attained = j.attained;
      v.kind_visible = clairvoyant;
      if (clairvoyant) {
        v.current_kind = j.job->phases[j.phase].kind;
        v.phase_remaining = j.phase_remaining;
      } else {
        v.phase_remaining = nan;
      }
      views.push_back(v);
    }
    ParContext ctx{now, capacity, views};
    ParDecision d = policy.allocate(ctx);
    if (d.shares.size() != alive.size()) par_fail("wrong share count");
    double sum = 0.0;
    for (double& s : d.shares) {
      s = clamp_nonneg(s, tol);
      if (s < 0.0 || !std::isfinite(s)) par_fail("negative/non-finite share");
      sum += s;
    }
    if (sum > capacity + tol) par_fail("shares exceed capacity");
    if (!(d.max_duration > 0.0)) par_fail("non-positive max_duration");

    // Progress rate per job given its current phase.
    Time dt = d.max_duration;
    if (next_arrival < n) {
      dt = std::min(dt, jobs[order[next_arrival]].release - now);
    }
    std::vector<double> rates(alive.size());
    for (std::size_t i = 0; i < alive.size(); ++i) {
      const Phase& phase = alive[i].job->phases[alive[i].phase];
      rates[i] = phase.kind == PhaseKind::kParallel
                     ? d.shares[i]
                     // Sequential phases progress at the machine's speed
                     // regardless of the allocation (they hold one
                     // processor's worth of progress implicitly).
                     : options.speed;
      if (rates[i] > 0.0) {
        dt = std::min(dt, alive[i].phase_remaining / rates[i]);
      }
    }
    if (!std::isfinite(dt)) par_fail("deadlock: no progress and no events");
    dt = std::max(dt, 0.0);

    for (std::size_t i = 0; i < alive.size(); ++i) {
      const double delta = rates[i] * dt;
      alive[i].phase_remaining -= delta;
      alive[i].attained += delta;
    }
    now += dt;

    // Phase transitions and completions (iterate in reverse for erasure).
    for (std::size_t ri = alive.size(); ri-- > 0;) {
      LivePar& j = alive[ri];
      while (j.phase_remaining <= kRelEps * j.job->phases[j.phase].work + kAbsEps) {
        if (j.phase + 1 < j.job->phases.size()) {
          ++j.phase;
          j.phase_remaining = j.job->phases[j.phase].work;
        } else {
          schedule.completion[j.id] = now;
          alive.erase(alive.begin() + static_cast<std::ptrdiff_t>(ri));
          break;
        }
      }
    }
    admit(now);
  }
  return schedule;
}

std::vector<ParJob> par_seq_stream(std::size_t n, double par, double seq,
                                   double gap) {
  if (!(par > 0.0) || !(seq > 0.0) || !(gap > 0.0)) {
    throw std::invalid_argument("par_seq_stream: parameters must be > 0");
  }
  std::vector<ParJob> jobs;
  jobs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ParJob j;
    j.id = static_cast<JobId>(i);
    j.release = static_cast<double>(i) * gap;
    j.phases = {Phase{PhaseKind::kParallel, par},
                Phase{PhaseKind::kSequential, seq}};
    jobs.push_back(std::move(j));
  }
  return jobs;
}

std::vector<ParJob> all_parallel(std::span<const double> works,
                                 std::span<const Time> releases) {
  if (works.size() != releases.size()) {
    throw std::invalid_argument("all_parallel: size mismatch");
  }
  std::vector<ParJob> jobs;
  jobs.reserve(works.size());
  for (std::size_t i = 0; i < works.size(); ++i) {
    ParJob j;
    j.id = static_cast<JobId>(i);
    j.release = releases[i];
    j.phases = {Phase{PhaseKind::kParallel, works[i]}};
    jobs.push_back(std::move(j));
  }
  return jobs;
}

}  // namespace tempofair::parsim
