// Event-driven simulator and policies for the speed-up curves setting.
//
// Processors are a continuously divisible resource of total m * speed; a
// policy assigns nonnegative shares rho_j (sum <= m * speed, no per-job cap
// -- a parallel phase can absorb every processor).  The engine advances
// analytically between arrivals, phase transitions and policy breakpoints.
//
// Policies:
//  * Equi          -- rho_j = capacity / n_t for every alive job: exactly the
//                     Round Robin of this setting (non-clairvoyant).
//  * Wequi         -- shares proportional to ages (the weighted RR of
//                     Edmonds-Im-Moseley [12], which IS O(1)-speed O(1)-
//                     competitive for l2 here); non-clairvoyant, epsilon-
//                     exact via refresh breakpoints like core WRR.
//  * LapsPar(beta) -- equal shares among the ceil(beta n) latest arrivals.
//  * ParOptProxy   -- clairvoyant benchmark: sequential-phase jobs get zero
//                     (they progress anyway); all processors go to the
//                     parallel-phase job with the least remaining parallel
//                     work in its current phase (SRPT-style).  A feasible
//                     schedule, hence an upper bound on OPT.
#pragma once

#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "parsim/parjob.h"

namespace tempofair::parsim {

struct ParAliveJob {
  JobId id = kInvalidJob;
  Time release = 0.0;
  double attained = 0.0;  ///< total work completed across phases
  // Clairvoyant-only fields (NaN for non-clairvoyant policies):
  PhaseKind current_kind = PhaseKind::kParallel;
  double phase_remaining = 0.0;
  bool kind_visible = false;
};

struct ParContext {
  Time now = 0.0;
  double capacity = 1.0;  ///< m * speed
  std::span<const ParAliveJob> alive;
};

struct ParDecision {
  std::vector<double> shares;  ///< processor shares, sum <= capacity
  Time max_duration = kInfiniteTime;
};

class ParPolicy {
 public:
  virtual ~ParPolicy() = default;
  ParPolicy() = default;
  ParPolicy(const ParPolicy&) = delete;
  ParPolicy& operator=(const ParPolicy&) = delete;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  [[nodiscard]] virtual bool clairvoyant() const noexcept = 0;
  [[nodiscard]] virtual ParDecision allocate(const ParContext& ctx) = 0;
};

class Equi final : public ParPolicy {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "equi"; }
  [[nodiscard]] bool clairvoyant() const noexcept override { return false; }
  [[nodiscard]] ParDecision allocate(const ParContext& ctx) override;
};

class Wequi final : public ParPolicy {
 public:
  explicit Wequi(double age_offset = 1e-3, double refresh_rel = 0.02);
  [[nodiscard]] std::string_view name() const noexcept override { return "wequi"; }
  [[nodiscard]] bool clairvoyant() const noexcept override { return false; }
  [[nodiscard]] ParDecision allocate(const ParContext& ctx) override;

 private:
  double age_offset_;
  double refresh_rel_;
};

class LapsPar final : public ParPolicy {
 public:
  explicit LapsPar(double beta);
  [[nodiscard]] std::string_view name() const noexcept override { return "laps"; }
  [[nodiscard]] bool clairvoyant() const noexcept override { return false; }
  [[nodiscard]] ParDecision allocate(const ParContext& ctx) override;

 private:
  double beta_;
};

/// WLAPS (Edmonds-Im-Moseley [12], specialized to unit weights and the l2
/// norm): processors go to the ceil(beta n) *latest* arrivals, in proportion
/// to their ages within that set.  This is the variant the paper's Section
/// 1.2 recalls as the previously-analyzable weighted RR for l_k norms in
/// this setting; pure age-proportional sharing over ALL jobs (Wequi) is a
/// deliberate mis-weighting kept for the ablation -- old jobs here sit in
/// sequential phases, so favoring them wastes processors.
class WlapsPar final : public ParPolicy {
 public:
  explicit WlapsPar(double beta, double age_offset = 1e-3,
                    double refresh_rel = 0.02);
  [[nodiscard]] std::string_view name() const noexcept override { return "wlaps"; }
  [[nodiscard]] bool clairvoyant() const noexcept override { return false; }
  [[nodiscard]] ParDecision allocate(const ParContext& ctx) override;

 private:
  double beta_;
  double age_offset_;
  double refresh_rel_;
};

class ParOptProxy final : public ParPolicy {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "paropt"; }
  [[nodiscard]] bool clairvoyant() const noexcept override { return true; }
  [[nodiscard]] ParDecision allocate(const ParContext& ctx) override;
};

struct ParSchedule {
  std::vector<Time> release;     // by job id
  std::vector<Time> completion;  // by job id

  [[nodiscard]] std::vector<double> flows() const;
};

struct ParSimOptions {
  int machines = 1;
  double speed = 1.0;
  std::size_t max_steps = 20'000'000;
};

/// Simulates `policy` on the phase-structured jobs; throws std::runtime_error
/// on policy misbehaviour and std::invalid_argument on bad input.
[[nodiscard]] ParSchedule simulate_par(std::span<const ParJob> jobs,
                                       ParPolicy& policy,
                                       const ParSimOptions& options = {});

// --- instance builders -------------------------------------------------------

/// The EQUI-hard family behind [15]: a stream of jobs, each a parallel phase
/// of work `par` followed by a sequential phase of length `seq`, arriving
/// every `gap`.  EQUI keeps granting sequential-phase jobs their full share,
/// starving the parallel phases of fresh arrivals; the clairvoyant proxy
/// gives sequential phases nothing.
[[nodiscard]] std::vector<ParJob> par_seq_stream(std::size_t n, double par,
                                                 double seq, double gap);

/// Fully parallel jobs (degenerates to the standard one-machine setting
/// scaled by capacity); used to cross-check against the core engine.
[[nodiscard]] std::vector<ParJob> all_parallel(std::span<const double> works,
                                               std::span<const Time> releases);

}  // namespace tempofair::parsim
