// Arbitrary speed-up curves setting (Edmonds [11]; discussed by the paper in
// Sections 1.2-1.3): each job is a sequence of *phases*, and a phase
// progresses at rate Gamma(rho) when allocated rho processors:
//
//   * PARALLEL phase:   Gamma(rho) = rho          (fully parallelizable)
//   * SEQUENTIAL phase: Gamma(rho) = 1 always     (cannot be sped up; any
//                       allocation beyond 0 is wasted)
//
// Phase boundaries are invisible to non-clairvoyant policies -- that is what
// makes the setting hard: EQUI (the RR of this world) wastes processors on
// sequential phases.  The paper recalls that EQUI is O(1)-speed O(1)-
// competitive for total flow [13] but NOT for the l2 norm [15], while the
// age-weighted variant WEQUI/WLAPS is [12] -- the backstory that made plain
// RR's l2 guarantee in the standard setting surprising.
#pragma once

#include <vector>

#include "core/time_types.h"

namespace tempofair::parsim {

enum class PhaseKind { kParallel, kSequential };

struct Phase {
  PhaseKind kind = PhaseKind::kParallel;
  double work = 1.0;  ///< for sequential phases, work == duration
};

struct ParJob {
  JobId id = kInvalidJob;
  Time release = 0.0;
  std::vector<Phase> phases;

  [[nodiscard]] double total_work() const noexcept {
    double w = 0.0;
    for (const Phase& p : phases) w += p.work;
    return w;
  }
};

}  // namespace tempofair::parsim
