// Run observability: named monotonic counters, scoped timers, CPU-time
// accounting and rate-limited progress lines.
//
// Counters accumulate into a Sink.  A thread can install a Sink override
// with ScopedSink; everything recorded on that thread (engine events, trace
// rows, dual-fit scan work, pool CPU time) then lands in that sink instead
// of the process-global one.  The thread pool propagates the submitting
// thread's override to its workers, so a whole fan-out -- including nested
// parallel_for chunks executed on stolen threads -- attributes to the run
// that spawned it.  This is how `tempofair_bench` produces per-experiment
// counter snapshots even when experiments share one work-stealing pool.
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

namespace tempofair::obs {

/// A set of named monotonic counters.  Thread-safe; cheap enough for
/// once-per-simulation recording (not intended for per-event increments --
/// accumulate locally and flush once).
class Sink {
 public:
  Sink() = default;
  Sink(const Sink&) = delete;
  Sink& operator=(const Sink&) = delete;

  void add(std::string_view name, std::uint64_t delta);
  /// Current value (0 if never recorded).
  [[nodiscard]] std::uint64_t value(std::string_view name) const;
  [[nodiscard]] std::map<std::string, std::uint64_t> snapshot() const;
  void clear();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::uint64_t, std::less<>> counters_;
};

/// The process-global fallback sink.
[[nodiscard]] Sink& global_sink();

/// The calling thread's override, or nullptr if none is installed.
[[nodiscard]] Sink* current_override() noexcept;

/// The sink the calling thread records to: its override, else the global.
[[nodiscard]] Sink& current_sink();

/// Records `delta` into the calling thread's current sink.
void add(std::string_view name, std::uint64_t delta);

/// Installs `sink` as the calling thread's override for this scope
/// (nullptr = record to the global sink again).  Restores the previous
/// override on destruction.
class ScopedSink {
 public:
  explicit ScopedSink(Sink* sink) noexcept;
  ~ScopedSink();
  ScopedSink(const ScopedSink&) = delete;
  ScopedSink& operator=(const ScopedSink&) = delete;

 private:
  Sink* previous_;
};

/// CPU time consumed by the calling thread, in nanoseconds.
[[nodiscard]] std::uint64_t thread_cpu_ns();

/// Adds "<name>.ns" (wall nanoseconds) and "<name>.calls" to the current
/// sink when the scope ends.
class ScopedTimer {
 public:
  explicit ScopedTimer(std::string_view name) noexcept;
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  std::string_view name_;
  std::chrono::steady_clock::time_point start_;
};

/// Adds the calling thread's *self* CPU time (excluding nested CpuAccount
/// scopes, which account for themselves) to `sink` under `counter` when the
/// scope ends.  The thread pool wraps every task in one of these, so a
/// task's CPU lands in its submitter's sink exactly once even when a worker
/// inlines other tasks while helping a join.
class CpuAccount {
 public:
  explicit CpuAccount(Sink& sink, std::string_view counter = "cpu_ns") noexcept;
  ~CpuAccount();
  CpuAccount(const CpuAccount&) = delete;
  CpuAccount& operator=(const CpuAccount&) = delete;

 private:
  Sink* sink_;
  std::string_view counter_;
  std::uint64_t saved_outer_ns_;
  std::uint64_t start_ns_;
};

/// Rate-limited progress lines ("label: done/total") for long fan-outs.
/// Thread-safe; prints at most one line per `min_interval` plus a final
/// line from finish() if anything was printed before.
class Progress {
 public:
  Progress(std::string label, std::uint64_t total, std::ostream* out = nullptr,
           std::chrono::milliseconds min_interval = std::chrono::seconds(2));
  void tick(std::uint64_t done_delta = 1);
  void finish();

 private:
  void print_line(std::uint64_t done);

  std::string label_;
  std::uint64_t total_;
  std::ostream* out_;
  std::chrono::milliseconds min_interval_;
  std::mutex mutex_;
  std::uint64_t done_ = 0;
  bool printed_ = false;
  std::chrono::steady_clock::time_point last_print_;
};

}  // namespace tempofair::obs
