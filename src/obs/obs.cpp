#include "obs/obs.h"

#include <ctime>
#include <iostream>

namespace tempofair::obs {

namespace {

thread_local Sink* tl_sink = nullptr;
thread_local std::uint64_t tl_nested_cpu_ns = 0;

}  // namespace

void Sink::add(std::string_view name, std::uint64_t delta) {
  std::lock_guard lock(mutex_);
  const auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

std::uint64_t Sink::value(std::string_view name) const {
  std::lock_guard lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

std::map<std::string, std::uint64_t> Sink::snapshot() const {
  std::lock_guard lock(mutex_);
  return {counters_.begin(), counters_.end()};
}

void Sink::clear() {
  std::lock_guard lock(mutex_);
  counters_.clear();
}

Sink& global_sink() {
  static Sink sink;
  return sink;
}

Sink* current_override() noexcept { return tl_sink; }

Sink& current_sink() { return tl_sink ? *tl_sink : global_sink(); }

void add(std::string_view name, std::uint64_t delta) {
  current_sink().add(name, delta);
}

ScopedSink::ScopedSink(Sink* sink) noexcept : previous_(tl_sink) {
  tl_sink = sink;
}

ScopedSink::~ScopedSink() { tl_sink = previous_; }

std::uint64_t thread_cpu_ns() {
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ULL +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

ScopedTimer::ScopedTimer(std::string_view name) noexcept
    : name_(name), start_(std::chrono::steady_clock::now()) {}

ScopedTimer::~ScopedTimer() {
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - start_)
                      .count();
  Sink& sink = current_sink();
  sink.add(std::string(name_) + ".ns", static_cast<std::uint64_t>(ns));
  sink.add(std::string(name_) + ".calls", 1);
}

CpuAccount::CpuAccount(Sink& sink, std::string_view counter) noexcept
    : sink_(&sink),
      counter_(counter),
      saved_outer_ns_(tl_nested_cpu_ns),
      start_ns_(thread_cpu_ns()) {
  tl_nested_cpu_ns = 0;
}

CpuAccount::~CpuAccount() {
  const std::uint64_t total = thread_cpu_ns() - start_ns_;
  const std::uint64_t nested = tl_nested_cpu_ns;
  sink_->add(counter_, total > nested ? total - nested : 0);
  tl_nested_cpu_ns = saved_outer_ns_ + total;
}

Progress::Progress(std::string label, std::uint64_t total, std::ostream* out,
                   std::chrono::milliseconds min_interval)
    : label_(std::move(label)),
      total_(total),
      out_(out ? out : &std::cerr),
      min_interval_(min_interval),
      last_print_(std::chrono::steady_clock::now()) {}

void Progress::tick(std::uint64_t done_delta) {
  std::lock_guard lock(mutex_);
  done_ += done_delta;
  const auto now = std::chrono::steady_clock::now();
  if (done_ < total_ && now - last_print_ < min_interval_) return;
  if (done_ < total_ && done_delta == 0) return;
  if (done_ >= total_ || now - last_print_ >= min_interval_) {
    // The final tick always prints if any earlier line did (so a watcher
    // sees completion), but a fast run stays silent end to end.
    if (done_ < total_ || printed_) {
      print_line(done_);
      last_print_ = now;
    }
  }
}

void Progress::finish() {
  std::lock_guard lock(mutex_);
  if (printed_ && done_ < total_) print_line(done_);
}

void Progress::print_line(std::uint64_t done) {
  *out_ << "[" << label_ << "] " << done << "/" << total_ << "\n";
  printed_ = true;
}

}  // namespace tempofair::obs
