// Columnar (structure-of-arrays) arena for the piecewise-constant rate trace.
//
// A simulated run produces a sequence of half-open intervals [begin, end)
// during which the alive set and all rates are constant.  The arena stores
// that sequence in contiguous column arrays -- interval bounds, a CSR offset
// table, flat job ids and flat rates -- instead of one heap-allocated
// std::vector<RateShare> per interval.  Consequences:
//
//   * appending a row is two bulk copies into flat arrays (no per-interval
//     allocation in the engine's inner loop);
//   * every analysis (l_k norms, fairness, dual fitting) is a linear scan
//     over dense memory;
//   * a per-job CSR index (built lazily, O(total entries)) gives each job a
//     cursor over exactly the intervals it appears in, so per-job integrals
//     -- traced work, alpha_j, service-lag curves -- cost O(intervals
//     containing j) instead of O(whole trace);
//   * intervals whose rates are all bitwise-equal (every Round Robin
//     interval) store a single rate, cutting the dominant column by the
//     alive-set size.
//
// Invariants (maintained by append, relied upon by all consumers):
//   I1. Intervals are appended in nondecreasing time order and have
//       end > begin (zero-length rows are the caller's job to drop).
//   I2. job_offset_/rate_offset_ are CSR tables of size size()+1 with
//       offset[0] == 0; interval i owns ids [job_offset_[i], job_offset_[i+1])
//       and rates [rate_offset_[i], rate_offset_[i+1]).
//   I3. rate_offset_[i+1]-rate_offset_[i] is either the interval's alive
//       count (per-job rates) or exactly 1 (uniform rate shared by all jobs
//       of the interval).  The two coincide for single-job intervals.
//   I4. Within an interval, job ids appear in the order the caller emitted
//       them (the engine emits sorted by id; Schedule::validate checks it).
//
// View lifetime: TraceIntervalView / JobTraceView / ShareRange are
// non-owning raw-pointer views.  They are invalidated by append(), clear()
// and shrink_to_fit(), exactly like std::span into a std::vector.  The
// lazily built per-job index is NOT thread-safe on first use; call
// job_trace() (or Schedule::validate) once before sharing a schedule
// across threads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <iterator>
#include <span>
#include <vector>

#include "core/time_types.h"

namespace tempofair {

/// One job's share of the machines during a trace interval.
struct RateShare {
  JobId job = kInvalidJob;
  /// Processing rate in work units per time unit; for a policy running at
  /// speed s on m machines this lies in [0, s] and rates sum to <= s*m.
  double rate = 0.0;
};

/// Lightweight random-access range of RateShares materialized on the fly
/// from the arena's columns (handles the uniform-rate compressed case).
class ShareRange {
 public:
  ShareRange(const JobId* jobs, const double* rates, std::size_t n,
             bool uniform) noexcept
      : jobs_(jobs), rates_(rates), n_(n), uniform_(uniform) {}

  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  [[nodiscard]] bool empty() const noexcept { return n_ == 0; }
  [[nodiscard]] RateShare operator[](std::size_t i) const noexcept {
    return RateShare{jobs_[i], uniform_ ? rates_[0] : rates_[i]};
  }

  class iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = RateShare;
    using difference_type = std::ptrdiff_t;
    using pointer = const RateShare*;
    using reference = RateShare;

    iterator() noexcept = default;
    iterator(const ShareRange* r, std::size_t i) noexcept : r_(r), i_(i) {}
    RateShare operator*() const noexcept { return (*r_)[i_]; }
    iterator& operator++() noexcept {
      ++i_;
      return *this;
    }
    iterator operator++(int) noexcept {
      iterator t = *this;
      ++i_;
      return t;
    }
    bool operator==(const iterator& o) const noexcept { return i_ == o.i_; }
    bool operator!=(const iterator& o) const noexcept { return i_ != o.i_; }

   private:
    const ShareRange* r_ = nullptr;
    std::size_t i_ = 0;
  };

  [[nodiscard]] iterator begin() const noexcept { return iterator(this, 0); }
  [[nodiscard]] iterator end() const noexcept { return iterator(this, n_); }

 private:
  const JobId* jobs_ = nullptr;
  const double* rates_ = nullptr;
  std::size_t n_ = 0;
  bool uniform_ = false;
};

/// Zero-copy view of one trace interval: bounds plus spans into the arena's
/// id and rate columns.  Cheap to construct and pass by value.
class TraceIntervalView {
 public:
  TraceIntervalView() noexcept = default;
  TraceIntervalView(Time begin, Time end, const JobId* jobs,
                    const double* rates, std::size_t n, bool uniform) noexcept
      : begin_(begin), end_(end), jobs_(jobs), rates_(rates), n_(n),
        uniform_(uniform) {}

  [[nodiscard]] Time begin() const noexcept { return begin_; }
  [[nodiscard]] Time end() const noexcept { return end_; }
  [[nodiscard]] Time length() const noexcept { return end_ - begin_; }
  [[nodiscard]] std::size_t alive_count() const noexcept { return n_; }

  [[nodiscard]] std::span<const JobId> jobs() const noexcept {
    return {jobs_, n_};
  }
  [[nodiscard]] JobId job(std::size_t i) const noexcept { return jobs_[i]; }
  [[nodiscard]] double rate(std::size_t i) const noexcept {
    return uniform_ ? rates_[0] : rates_[i];
  }
  [[nodiscard]] RateShare share(std::size_t i) const noexcept {
    return RateShare{jobs_[i], rate(i)};
  }
  /// True if this interval is stored in uniform-rate compressed form
  /// (all rates bitwise-equal at append time).
  [[nodiscard]] bool uniform_rate() const noexcept { return uniform_; }

  [[nodiscard]] ShareRange shares() const noexcept {
    return ShareRange(jobs_, rates_, n_, uniform_);
  }

 private:
  Time begin_ = 0.0;
  Time end_ = 0.0;
  const JobId* jobs_ = nullptr;
  const double* rates_ = nullptr;
  std::size_t n_ = 0;
  bool uniform_ = false;
};

/// One entry of a job's trace cursor: the job's rate during one interval it
/// is alive in, plus the interval's position in the arena (usable to query
/// global per-interval facts such as the alive count).
struct JobSlice {
  std::size_t interval = 0;
  Time begin = 0.0;
  Time end = 0.0;
  double rate = 0.0;

  [[nodiscard]] Time length() const noexcept { return end - begin; }
};

class TraceArena;

/// Cursor over the intervals containing one job, in trace order.  Backed by
/// the arena's per-job CSR index; iterating costs O(intervals containing j).
class JobTraceView {
 public:
  JobTraceView() noexcept = default;
  JobTraceView(const TraceArena* arena, const std::uint32_t* intervals,
               const std::uint32_t* positions, std::size_t n) noexcept
      : arena_(arena), intervals_(intervals), positions_(positions), n_(n) {}

  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  [[nodiscard]] bool empty() const noexcept { return n_ == 0; }
  [[nodiscard]] JobSlice operator[](std::size_t i) const noexcept;
  [[nodiscard]] JobSlice front() const noexcept { return (*this)[0]; }
  [[nodiscard]] JobSlice back() const noexcept { return (*this)[n_ - 1]; }

  /// Total work processed for the job: sum of rate * length over slices.
  [[nodiscard]] Work total_work() const noexcept;

  class iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = JobSlice;
    using difference_type = std::ptrdiff_t;
    using pointer = const JobSlice*;
    using reference = JobSlice;

    iterator() noexcept = default;
    iterator(const JobTraceView* v, std::size_t i) noexcept : v_(v), i_(i) {}
    JobSlice operator*() const noexcept { return (*v_)[i_]; }
    iterator& operator++() noexcept {
      ++i_;
      return *this;
    }
    iterator operator++(int) noexcept {
      iterator t = *this;
      ++i_;
      return t;
    }
    bool operator==(const iterator& o) const noexcept { return i_ == o.i_; }
    bool operator!=(const iterator& o) const noexcept { return i_ != o.i_; }

   private:
    const JobTraceView* v_ = nullptr;
    std::size_t i_ = 0;
  };

  [[nodiscard]] iterator begin() const noexcept { return iterator(this, 0); }
  [[nodiscard]] iterator end() const noexcept { return iterator(this, n_); }

 private:
  const TraceArena* arena_ = nullptr;
  const std::uint32_t* intervals_ = nullptr;
  const std::uint32_t* positions_ = nullptr;
  std::size_t n_ = 0;
};

/// The columnar trace store.  See the file comment for layout and invariants.
class TraceArena {
 public:
  TraceArena() = default;

  // --- mutation -------------------------------------------------------------
  void clear() noexcept;
  void reserve(std::size_t intervals, std::size_t entries);
  /// Appends one interval row.  `jobs` and `rates` must be parallel; the
  /// engine emits jobs sorted by id (I4).  Requires end > begin.
  void append(Time begin, Time end, std::span<const JobId> jobs,
              std::span<const double> rates);
  /// Appends a uniform-rate row (every job at `rate`) directly in the I3
  /// compressed form, producing exactly the columns append() would for an
  /// all-equal rate vector -- without the caller materializing one.  The
  /// engine's epoch-coalescing fast path emits Round-Robin rows this way.
  void append_uniform(Time begin, Time end, std::span<const JobId> jobs,
                      double rate);
  /// Convenience for hand-built traces (tests).
  void append(Time begin, Time end, std::initializer_list<RateShare> shares);
  /// Releases growth slack in all columns (call once after the last append).
  void shrink_to_fit();

  // --- interval access ------------------------------------------------------
  [[nodiscard]] std::size_t size() const noexcept { return begin_.size(); }
  [[nodiscard]] bool empty() const noexcept { return begin_.empty(); }
  /// Flat (interval, job) pair count across all intervals.
  [[nodiscard]] std::size_t entry_count() const noexcept {
    return ids_.size();
  }
  [[nodiscard]] TraceIntervalView operator[](std::size_t i) const noexcept;
  [[nodiscard]] TraceIntervalView front() const noexcept { return (*this)[0]; }
  [[nodiscard]] TraceIntervalView back() const noexcept {
    return (*this)[size() - 1];
  }

  class const_iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = TraceIntervalView;
    using difference_type = std::ptrdiff_t;
    using pointer = const TraceIntervalView*;
    using reference = TraceIntervalView;

    const_iterator() noexcept = default;
    const_iterator(const TraceArena* a, std::size_t i) noexcept
        : a_(a), i_(i) {}
    TraceIntervalView operator*() const noexcept { return (*a_)[i_]; }
    const_iterator& operator++() noexcept {
      ++i_;
      return *this;
    }
    const_iterator operator++(int) noexcept {
      const_iterator t = *this;
      ++i_;
      return t;
    }
    bool operator==(const const_iterator& o) const noexcept {
      return i_ == o.i_;
    }
    bool operator!=(const const_iterator& o) const noexcept {
      return i_ != o.i_;
    }

   private:
    const TraceArena* a_ = nullptr;
    std::size_t i_ = 0;
  };

  [[nodiscard]] const_iterator begin() const noexcept {
    return const_iterator(this, 0);
  }
  [[nodiscard]] const_iterator end() const noexcept {
    return const_iterator(this, size());
  }

  // --- per-job access -------------------------------------------------------
  /// Cursor over the intervals containing `job`.  Builds the per-job CSR
  /// index on first use (O(total entries)); subsequent calls are O(1).
  [[nodiscard]] JobTraceView job_trace(JobId job) const;
  /// Total traced work for one job, via the per-job index.
  [[nodiscard]] Work job_work(JobId job) const {
    return job_trace(job).total_work();
  }

  // --- memory accounting ----------------------------------------------------
  /// Bytes currently allocated by the core columns (excludes the lazily
  /// built per-job index; capacity-based, so growth slack counts).
  [[nodiscard]] std::size_t memory_bytes() const noexcept;
  /// High-water mark of memory_bytes() across the arena's lifetime.
  [[nodiscard]] std::size_t peak_memory_bytes() const noexcept {
    return peak_bytes_;
  }
  /// Bytes allocated by the per-job index (0 until first job_trace call).
  [[nodiscard]] std::size_t index_memory_bytes() const noexcept;

 private:
  friend class JobTraceView;

  void ensure_job_index() const;
  [[nodiscard]] bool interval_uniform(std::size_t i) const noexcept {
    const std::uint64_t nrates = rate_off_[i + 1] - rate_off_[i];
    return nrates != job_off_[i + 1] - job_off_[i] || nrates == 1;
  }

  std::vector<Time> begin_;
  std::vector<Time> end_;
  std::vector<std::uint64_t> job_off_{0};   // size()+1 CSR into ids_
  std::vector<std::uint64_t> rate_off_{0};  // size()+1 CSR into rates_
  std::vector<JobId> ids_;
  std::vector<double> rates_;
  std::size_t peak_bytes_ = 0;

  // Per-job CSR index, built lazily by ensure_job_index().
  mutable bool index_built_ = false;
  mutable std::vector<std::uint64_t> jidx_off_;       // n_jobs+1
  mutable std::vector<std::uint32_t> jidx_interval_;  // entry -> interval
  mutable std::vector<std::uint32_t> jidx_pos_;       // entry -> pos in row
};

}  // namespace tempofair
