// Portable data-parallel kernels for the engine's fused inner loops.
//
// This shim is the ONLY place in the tree allowed to include <immintrin.h>
// (scripts/header_lint.sh enforces the confinement).  Each kernel has two
// implementations selected at COMPILE time by the instruction-set macros the
// build defines (-mavx2 via the TEMPOFAIR_SIMD cmake option): a vector path
// and a scalar fallback that is the definitional reference.  At runtime the
// TEMPOFAIR_FORCE_SCALAR environment variable (read once per process)
// forces the scalar fallback even in a vector build, so sanitizers and the
// determinism tests can cover both paths of one binary.
//
// Bitwise contract: every kernel performs exactly the same IEEE-754
// operations per element as its scalar fallback -- same multiply, same
// subtract, in round-to-nearest, with NO fused-multiply-add contraction
// (the intrinsics used are plain mul/sub/div, which the compiler may not
// contract) and NO reassociation of per-element chains.  Horizontal
// reductions are only used for min(), which is associative and commutative
// over the non-NaN doubles the engine feeds it, so vector-lane order cannot
// change the result.  FastForwardCore's fast/slow equivalence tests and
// tests/core/simd_test.cpp hold both paths to this bit-for-bit.
#pragma once

#include <cstddef>
#include <cstdlib>

#if defined(__AVX2__)
#include <immintrin.h>
#define TEMPOFAIR_SIMD_AVX2 1
#endif

namespace tempofair::simd {

/// Compile-time width of the vector path (doubles per register); 1 when the
/// build has no vector ISA enabled.
#if defined(TEMPOFAIR_SIMD_AVX2)
inline constexpr std::size_t kVectorWidth = 4;
#else
inline constexpr std::size_t kVectorWidth = 1;
#endif

/// True when TEMPOFAIR_FORCE_SCALAR is set to a non-empty, non-"0" value.
/// Evaluated once; the knob exists so one binary can exercise both code
/// paths (sanitize CI runs the suite twice, once forced scalar).
[[nodiscard]] inline bool force_scalar() noexcept {
  static const bool forced = [] {
    const char* env = std::getenv("TEMPOFAIR_FORCE_SCALAR");
    return env != nullptr && env[0] != '\0' &&
           !(env[0] == '0' && env[1] == '\0');
  }();
  return forced;
}

/// True when calls will take the vector path (vector build and not forced
/// scalar); what the perf cases and tests report about the running config.
[[nodiscard]] inline bool vector_active() noexcept {
  return kVectorWidth > 1 && !force_scalar();
}

// --- scalar reference implementations --------------------------------------
// These are the semantics; the vector paths below must match them bitwise.

namespace scalar {

inline void sub_scalar(double* v, std::size_t n, double delta) noexcept {
  for (std::size_t i = 0; i < n; ++i) v[i] -= delta;
}

inline void advance(double* attained, double* remaining, const double* rates,
                    std::size_t n, double dt) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    const double delta = rates[i] * dt;
    attained[i] += delta;
    remaining[i] -= delta;
  }
}

inline void sub_product(double* remaining, const double* rates, std::size_t n,
                        double dt) noexcept {
  for (std::size_t i = 0; i < n; ++i) remaining[i] -= rates[i] * dt;
}

/// min over i with rates[i] > 0 of remaining[i] / rates[i]; +inf when no
/// rate is positive.  remaining[i] must be > 0 (the engine guarantees alive
/// jobs keep positive remaining work), so a zero rate divides to +inf and
/// drops out of the min on its own -- no NaN can appear.
[[nodiscard]] inline double min_ratio(const double* remaining,
                                      const double* rates,
                                      std::size_t n) noexcept {
  double best = __builtin_inf();
  for (std::size_t i = 0; i < n; ++i) {
    const double cdt = remaining[i] / rates[i];
    if (cdt < best) best = cdt;
  }
  return best;
}

}  // namespace scalar

// --- public kernels (vector path + runtime force-scalar escape) -------------

/// v[i] -= delta for all i (the kUniformShare fused advance: every alive job
/// loses the same rounded delta, order preserved -- F2 in fast_forward.cpp).
inline void sub_scalar(double* v, std::size_t n, double delta) noexcept {
#if defined(TEMPOFAIR_SIMD_AVX2)
  if (!force_scalar()) {
    const __m256d d = _mm256_set1_pd(delta);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
      _mm256_storeu_pd(v + i, _mm256_sub_pd(_mm256_loadu_pd(v + i), d));
    }
    for (; i < n; ++i) v[i] -= delta;
    return;
  }
#endif
  scalar::sub_scalar(v, n, delta);
}

/// attained[i] += rates[i]*dt; remaining[i] -= rates[i]*dt.  The generic
/// loop's per-job advance, fused over the SoA columns.  Explicit mul then
/// add/sub -- never FMA -- so the rounding matches the scalar loop exactly.
inline void advance(double* attained, double* remaining, const double* rates,
                    std::size_t n, double dt) noexcept {
#if defined(TEMPOFAIR_SIMD_AVX2)
  if (!force_scalar()) {
    const __m256d vdt = _mm256_set1_pd(dt);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
      const __m256d delta = _mm256_mul_pd(_mm256_loadu_pd(rates + i), vdt);
      _mm256_storeu_pd(attained + i,
                       _mm256_add_pd(_mm256_loadu_pd(attained + i), delta));
      _mm256_storeu_pd(remaining + i,
                       _mm256_sub_pd(_mm256_loadu_pd(remaining + i), delta));
    }
    for (; i < n; ++i) {
      const double delta = rates[i] * dt;
      attained[i] += delta;
      remaining[i] -= delta;
    }
    return;
  }
#endif
  scalar::advance(attained, remaining, rates, n, dt);
}

/// remaining[i] -= rates[i]*dt (the kWeightedShare fused advance; no
/// attained column is kept for weight-static policies).
inline void sub_product(double* remaining, const double* rates, std::size_t n,
                        double dt) noexcept {
#if defined(TEMPOFAIR_SIMD_AVX2)
  if (!force_scalar()) {
    const __m256d vdt = _mm256_set1_pd(dt);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
      const __m256d delta = _mm256_mul_pd(_mm256_loadu_pd(rates + i), vdt);
      _mm256_storeu_pd(remaining + i,
                       _mm256_sub_pd(_mm256_loadu_pd(remaining + i), delta));
    }
    for (; i < n; ++i) remaining[i] -= rates[i] * dt;
    return;
  }
#endif
  scalar::sub_product(remaining, rates, n, dt);
}

/// Earliest predicted completion: min over positive-rate jobs of
/// remaining/rate (+inf when none).  Division by a zero rate yields +inf
/// (remaining > 0), which cannot win the min, so the vector path needs no
/// mask; min is order-independent over non-NaN values, so the horizontal
/// reduction matches the scalar left-to-right min bitwise.
[[nodiscard]] inline double min_ratio(const double* remaining,
                                      const double* rates,
                                      std::size_t n) noexcept {
#if defined(TEMPOFAIR_SIMD_AVX2)
  if (!force_scalar()) {
    __m256d best = _mm256_set1_pd(__builtin_inf());
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
      best = _mm256_min_pd(best, _mm256_div_pd(_mm256_loadu_pd(remaining + i),
                                               _mm256_loadu_pd(rates + i)));
    }
    alignas(32) double lanes[4];
    _mm256_store_pd(lanes, best);
    double out = lanes[0];
    if (lanes[1] < out) out = lanes[1];
    if (lanes[2] < out) out = lanes[2];
    if (lanes[3] < out) out = lanes[3];
    for (; i < n; ++i) {
      const double cdt = remaining[i] / rates[i];
      if (cdt < out) out = cdt;
    }
    return out;
  }
#endif
  return scalar::min_ratio(remaining, rates, n);
}

}  // namespace tempofair::simd
