// Policy interface: an online scheduling algorithm expressed as a *rate
// allocator* over the alive set, exactly matching the feasible-schedule
// characterization of Section 2 of the paper: at each time the policy picks
// machine shares m_j(t) in [0,1] with sum <= m (scaled here by the speed
// augmentation s, so rates lie in [0, s] and sum to <= s*m).
//
// The engine queries rates() whenever the alive set changes (arrival or
// completion) or when the policy's own breakpoint expires (`max_duration`,
// used by quantum-based policies, SETF level catch-up, and continuously
// varying shares such as age-weighted RR).
//
// Non-clairvoyance: policies whose clairvoyant() is false must never read
// AliveJob::size/remaining; the engine can enforce this by hiding them (NaN)
// -- see EngineOptions::hide_sizes.  Round Robin is non-clairvoyant: it needs
// nothing but the alive set.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "core/fast_forward.h"
#include "core/invariants.h"
#include "core/time_types.h"

namespace tempofair {

/// The engine's view of one alive (released, not yet completed) job.
struct AliveJob {
  JobId id = kInvalidJob;
  Time release = 0.0;
  /// Service received so far (observable even non-clairvoyantly).
  Work attained = 0.0;
  /// Original size; NaN when the engine hides sizes (non-clairvoyant run).
  Work size = 0.0;
  /// Remaining work; NaN when the engine hides sizes.
  Work remaining = 0.0;
  /// Importance weight; always visible (weights are announced at arrival
  /// even in the non-clairvoyant model).
  double weight = 1.0;

  [[nodiscard]] Time age(Time now) const noexcept { return now - release; }
};

/// Immutable context handed to Policy::rates().
struct SchedulerContext {
  Time now = 0.0;
  int machines = 1;
  /// Speed augmentation s: every machine runs s times faster than OPT's.
  double speed = 1.0;
  /// Alive jobs, sorted by id.
  std::span<const AliveJob> alive;
  /// False when the engine hides sizes (AliveJob::size/remaining are NaN).
  bool sizes_visible = true;

  [[nodiscard]] std::size_t n_alive() const noexcept { return alive.size(); }
  /// Total rate capacity available right now: s * m.
  [[nodiscard]] double capacity() const noexcept { return speed * machines; }
};

/// A policy's answer: one rate per alive job (parallel to ctx.alive), plus an
/// optional upper bound on how long this allocation may stay in force.
struct RateDecision {
  std::vector<double> rates;
  /// The engine will re-query rates() after at most this long even if no
  /// arrival/completion occurs.  Infinite for event-driven-only policies.
  Time max_duration = kInfiniteTime;
};

class Policy {
 public:
  virtual ~Policy() = default;
  Policy() = default;
  Policy(const Policy&) = delete;
  Policy& operator=(const Policy&) = delete;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  /// True if the policy reads job sizes / remaining work.
  [[nodiscard]] virtual bool clairvoyant() const noexcept = 0;
  /// Epoch-coalescing capability (see core/fast_forward.h).  Policies whose
  /// allocation rule has a closed form override this and must honor the
  /// FastForward contract (C1-C3); the default advertises none, keeping the
  /// generic event loop.
  [[nodiscard]] virtual FastForward fast_forward() const noexcept {
    return {};
  }
  /// Structural facts about this policy's allocation rule, consumed by the
  /// invariant layer (core/invariants.h) to decide which profile-gated
  /// checkers apply.  The default claims only work conservation; policies
  /// that idle capacity by design narrow it, the RR family widens it with
  /// its no-starvation / equal-share witnesses.
  [[nodiscard]] virtual PolicyInvariantTraits invariant_traits()
      const noexcept {
    return {};
  }

  /// Called once before each simulation; stateful policies reset here.
  virtual void reset() {}
  /// Called when `job` arrives (before the next rates() query).
  virtual void on_arrival(const AliveJob& job, Time now) {
    (void)job;
    (void)now;
  }
  /// Called when job `id` completes (before the next rates() query).
  virtual void on_completion(JobId id, Time now) {
    (void)id;
    (void)now;
  }

  /// Allocate rates to ctx.alive.  Must return exactly ctx.alive.size()
  /// rates, each in [0, ctx.speed], summing to at most ctx.capacity().
  [[nodiscard]] virtual RateDecision rates(const SchedulerContext& ctx) = 0;
};

}  // namespace tempofair
