#include "core/metrics.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tempofair {

double lk_power_sum(std::span<const double> values, double k) {
  if (k < 1.0) throw std::invalid_argument("lk_power_sum: k must be >= 1");
  double sum = 0.0;
  for (double v : values) {
    if (v < 0.0) throw std::invalid_argument("lk_power_sum: negative value");
    sum += std::pow(v, k);
  }
  return sum;
}

double lk_norm(std::span<const double> values, double k) {
  if (k < 1.0) throw std::invalid_argument("lk_norm: k must be >= 1");
  if (values.empty()) return 0.0;
  double vmax = 0.0;
  for (double v : values) {
    if (v < 0.0) throw std::invalid_argument("lk_norm: negative value");
    vmax = std::max(vmax, v);
  }
  if (std::isinf(k)) return vmax;
  if (vmax <= 0.0) return 0.0;
  // (sum (v/vmax)^k)^(1/k) * vmax avoids overflow for large k.
  double sum = 0.0;
  for (double v : values) sum += std::pow(v / vmax, k);
  return vmax * std::pow(sum, 1.0 / k);
}

double linf_norm(std::span<const double> values) {
  double m = 0.0;
  for (double v : values) m = std::max(m, v);
  return m;
}

double percentile(std::span<const double> values, double p) {
  if (values.empty()) return 0.0;
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile: p outside [0,100]");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = (p / 100.0) * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(pos));
  const std::size_t hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

FlowStats flow_stats(std::span<const double> flows) {
  FlowStats s;
  s.n = flows.size();
  if (flows.empty()) return s;
  double sum = 0.0, sq = 0.0;
  for (double f : flows) {
    sum += f;
    sq += f * f;
  }
  s.l1 = sum;
  s.l2 = lk_norm(flows, 2.0);
  s.l3 = lk_norm(flows, 3.0);
  s.linf = linf_norm(flows);
  s.mean = sum / static_cast<double>(s.n);
  s.variance = std::max(0.0, sq / static_cast<double>(s.n) - s.mean * s.mean);
  s.stddev = std::sqrt(s.variance);
  s.p50 = percentile(flows, 50.0);
  s.p95 = percentile(flows, 95.0);
  s.p99 = percentile(flows, 99.0);
  return s;
}

FlowStats flow_stats(const Schedule& schedule) {
  const std::vector<Time> flows = schedule.flows();
  return flow_stats(flows);
}

// The Schedule overloads below recompute F_j = C_j - r_j from the schedule's
// columnar completion/release arrays on the fly instead of materializing a
// flows vector per call.  The value sequence (and hence every rounding step)
// matches lk_power_sum / lk_norm over flows() exactly.

double flow_lk_norm(const Schedule& schedule, double k) {
  if (k < 1.0) throw std::invalid_argument("lk_norm: k must be >= 1");
  const std::span<const Time> completion = schedule.completions();
  const std::span<const Time> release = schedule.releases();
  const std::size_t n = completion.size();
  if (n == 0) return 0.0;
  double vmax = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double v = completion[i] - release[i];
    if (v < 0.0) throw std::invalid_argument("lk_norm: negative value");
    vmax = std::max(vmax, v);
  }
  if (std::isinf(k)) return vmax;
  if (vmax <= 0.0) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sum += std::pow((completion[i] - release[i]) / vmax, k);
  }
  return vmax * std::pow(sum, 1.0 / k);
}

double flow_lk_power(const Schedule& schedule, double k) {
  if (k < 1.0) throw std::invalid_argument("lk_power_sum: k must be >= 1");
  const std::span<const Time> completion = schedule.completions();
  const std::span<const Time> release = schedule.releases();
  double sum = 0.0;
  for (std::size_t i = 0; i < completion.size(); ++i) {
    const double v = completion[i] - release[i];
    if (v < 0.0) throw std::invalid_argument("lk_power_sum: negative value");
    sum += std::pow(v, k);
  }
  return sum;
}

double weighted_lk_power(std::span<const double> values,
                         std::span<const double> weights, double k) {
  if (k < 1.0) throw std::invalid_argument("weighted_lk_power: k must be >= 1");
  if (values.size() != weights.size()) {
    throw std::invalid_argument("weighted_lk_power: size mismatch");
  }
  double sum = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (values[i] < 0.0 || weights[i] < 0.0) {
      throw std::invalid_argument("weighted_lk_power: negative value or weight");
    }
    sum += weights[i] * std::pow(values[i], k);
  }
  return sum;
}

double weighted_lk_norm(std::span<const double> values,
                        std::span<const double> weights, double k) {
  if (k < 1.0) throw std::invalid_argument("weighted_lk_norm: k must be >= 1");
  if (values.size() != weights.size()) {
    throw std::invalid_argument("weighted_lk_norm: size mismatch");
  }
  if (std::isinf(k)) {
    double m = 0.0;
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (values[i] < 0.0 || weights[i] < 0.0) {
        throw std::invalid_argument("weighted_lk_norm: negative value or weight");
      }
      if (weights[i] > 0.0) m = std::max(m, values[i]);
    }
    return m;
  }
  const double power = weighted_lk_power(values, weights, k);
  return std::pow(power, 1.0 / k);
}

double weighted_flow_lk_power(const Schedule& schedule, double k) {
  const std::vector<Time> flows = schedule.flows();
  return weighted_lk_power(flows, schedule.weights(), k);
}

double weighted_flow_lk_norm(const Schedule& schedule, double k) {
  const std::vector<Time> flows = schedule.flows();
  return weighted_lk_norm(flows, schedule.weights(), k);
}

void LiveMetrics::set_expected(std::size_t n) {
  const std::lock_guard<std::mutex> lock(mutex_);
  expected_ = n;
}

void LiveMetrics::record(Time flow) {
  const std::lock_guard<std::mutex> lock(mutex_);
  flows_.push_back(flow);
}

void LiveMetrics::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  flows_.clear();
  expected_ = 0;
}

std::size_t LiveMetrics::completed() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return flows_.size();
}

std::size_t LiveMetrics::expected() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return expected_;
}

FlowStats LiveMetrics::snapshot() const { return flow_stats(flows()); }

double LiveMetrics::lk(double k) const { return lk_norm(flows(), k); }

double LiveMetrics::percentile(double p) const {
  return tempofair::percentile(flows(), p);
}

std::vector<double> LiveMetrics::flows() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return flows_;
}

}  // namespace tempofair
