#include "core/metrics.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace tempofair {

namespace {

/// Interpolated percentile over an already-sorted, non-empty vector; the one
/// definition shared by the free percentile() and LiveMetrics' cached path.
double percentile_sorted(std::span<const double> sorted, double p) {
  const double pos = (p / 100.0) * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(pos));
  const std::size_t hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

double lk_power_sum(std::span<const double> values, double k) {
  if (k < 1.0) throw std::invalid_argument("lk_power_sum: k must be >= 1");
  double vmax = 0.0;
  for (double v : values) {
    if (v < 0.0) throw std::invalid_argument("lk_power_sum: negative value");
    vmax = std::max(vmax, v);
  }
  if (vmax <= 0.0) return 0.0;
  // Accumulate in the vmax-rescaled form (every term in [0, 1]) and scale
  // once at the end: the sum itself never overflows, so the result is inf
  // only when sum v^k genuinely exceeds the double range.
  double sum = 0.0;
  for (double v : values) sum += std::pow(v / vmax, k);
  return std::pow(vmax, k) * sum;
}

double lk_norm(std::span<const double> values, double k) {
  if (k < 1.0) throw std::invalid_argument("lk_norm: k must be >= 1");
  if (values.empty()) return 0.0;
  double vmax = 0.0;
  for (double v : values) {
    if (v < 0.0) throw std::invalid_argument("lk_norm: negative value");
    vmax = std::max(vmax, v);
  }
  if (std::isinf(k)) return vmax;
  if (vmax <= 0.0) return 0.0;
  // (sum (v/vmax)^k)^(1/k) * vmax avoids overflow for large k.
  double sum = 0.0;
  for (double v : values) sum += std::pow(v / vmax, k);
  return vmax * std::pow(sum, 1.0 / k);
}

double linf_norm(std::span<const double> values) {
  double m = 0.0;
  for (double v : values) m = std::max(m, v);
  return m;
}

double percentile(std::span<const double> values, double p) {
  if (values.empty()) return 0.0;
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile: p outside [0,100]");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  return percentile_sorted(sorted, p);
}

FlowStats flow_stats(std::span<const double> flows) {
  FlowStats s;
  s.n = flows.size();
  if (flows.empty()) return s;
  double sum = 0.0, sq = 0.0;
  for (double f : flows) {
    sum += f;
    sq += f * f;
  }
  s.l1 = sum;
  s.l2 = lk_norm(flows, 2.0);
  s.l3 = lk_norm(flows, 3.0);
  s.linf = linf_norm(flows);
  s.mean = sum / static_cast<double>(s.n);
  s.variance = std::max(0.0, sq / static_cast<double>(s.n) - s.mean * s.mean);
  s.stddev = std::sqrt(s.variance);
  // One copy + one sort serves all three percentiles (sorting per
  // percentile dominated the whole fast-path run on 100k-job instances).
  std::vector<double> sorted(flows.begin(), flows.end());
  std::sort(sorted.begin(), sorted.end());
  s.p50 = percentile_sorted(sorted, 50.0);
  s.p95 = percentile_sorted(sorted, 95.0);
  s.p99 = percentile_sorted(sorted, 99.0);
  return s;
}

FlowStats flow_stats(const Schedule& schedule) {
  const std::vector<Time> flows = schedule.flows();
  return flow_stats(flows);
}

// The Schedule overloads below recompute F_j = C_j - r_j from the schedule's
// columnar completion/release arrays on the fly instead of materializing a
// flows vector per call.  The value sequence (and hence every rounding step)
// matches lk_power_sum / lk_norm over flows() exactly.

double flow_lk_norm(const Schedule& schedule, double k) {
  if (k < 1.0) throw std::invalid_argument("lk_norm: k must be >= 1");
  const std::span<const Time> completion = schedule.completions();
  const std::span<const Time> release = schedule.releases();
  const std::size_t n = completion.size();
  if (n == 0) return 0.0;
  double vmax = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double v = completion[i] - release[i];
    if (v < 0.0) throw std::invalid_argument("lk_norm: negative value");
    vmax = std::max(vmax, v);
  }
  if (std::isinf(k)) return vmax;
  if (vmax <= 0.0) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sum += std::pow((completion[i] - release[i]) / vmax, k);
  }
  return vmax * std::pow(sum, 1.0 / k);
}

double flow_lk_power(const Schedule& schedule, double k) {
  if (k < 1.0) throw std::invalid_argument("lk_power_sum: k must be >= 1");
  const std::span<const Time> completion = schedule.completions();
  const std::span<const Time> release = schedule.releases();
  double vmax = 0.0;
  for (std::size_t i = 0; i < completion.size(); ++i) {
    const double v = completion[i] - release[i];
    if (v < 0.0) throw std::invalid_argument("lk_power_sum: negative value");
    vmax = std::max(vmax, v);
  }
  if (vmax <= 0.0) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < completion.size(); ++i) {
    sum += std::pow((completion[i] - release[i]) / vmax, k);
  }
  return std::pow(vmax, k) * sum;
}

namespace {

/// Max value on the positive-weight support (weights act as a support
/// filter, matching the k = infinity semantics); validates both spans.
double weighted_support_max(std::span<const double> values,
                            std::span<const double> weights, const char* who) {
  double vmax = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (values[i] < 0.0 || weights[i] < 0.0) {
      throw std::invalid_argument(std::string(who) +
                                  ": negative value or weight");
    }
    if (weights[i] > 0.0) vmax = std::max(vmax, values[i]);
  }
  return vmax;
}

}  // namespace

double weighted_lk_power(std::span<const double> values,
                         std::span<const double> weights, double k) {
  if (k < 1.0) throw std::invalid_argument("weighted_lk_power: k must be >= 1");
  if (values.size() != weights.size()) {
    throw std::invalid_argument("weighted_lk_power: size mismatch");
  }
  const double vmax =
      weighted_support_max(values, weights, "weighted_lk_power");
  if (vmax <= 0.0) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    sum += weights[i] * std::pow(values[i] / vmax, k);
  }
  return std::pow(vmax, k) * sum;
}

double weighted_lk_norm(std::span<const double> values,
                        std::span<const double> weights, double k) {
  if (k < 1.0) throw std::invalid_argument("weighted_lk_norm: k must be >= 1");
  if (values.size() != weights.size()) {
    throw std::invalid_argument("weighted_lk_norm: size mismatch");
  }
  const double vmax = weighted_support_max(values, weights, "weighted_lk_norm");
  if (std::isinf(k)) return vmax;
  if (vmax <= 0.0) return 0.0;
  // Root of the *rescaled* weighted power: the unscaled sum w v^k can
  // overflow to inf even when the norm itself is representable.
  double sum = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    sum += weights[i] * std::pow(values[i] / vmax, k);
  }
  return vmax * std::pow(sum, 1.0 / k);
}

double weighted_flow_lk_power(const Schedule& schedule, double k) {
  const std::vector<Time> flows = schedule.flows();
  return weighted_lk_power(flows, schedule.weights(), k);
}

double weighted_flow_lk_norm(const Schedule& schedule, double k) {
  const std::vector<Time> flows = schedule.flows();
  return weighted_lk_norm(flows, schedule.weights(), k);
}

void LiveMetrics::set_expected(std::size_t n) {
  const std::lock_guard<std::mutex> lock(mutex_);
  expected_ = n;
}

void LiveMetrics::record(Time flow) {
  const std::lock_guard<std::mutex> lock(mutex_);
  flows_.push_back(flow);
  sorted_valid_ = false;
}

void LiveMetrics::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  flows_.clear();
  expected_ = 0;
  sorted_.clear();
  sorted_valid_ = false;
}

std::size_t LiveMetrics::completed() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return flows_.size();
}

std::size_t LiveMetrics::expected() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return expected_;
}

FlowStats LiveMetrics::snapshot() const { return flow_stats(flows()); }

double LiveMetrics::lk(double k) const { return lk_norm(flows(), k); }

double LiveMetrics::percentile(double p) const {
  if (p < 0.0 || p > 100.0) {
    throw std::invalid_argument("percentile: p outside [0,100]");
  }
  // Percentile queries re-sort nothing while no job completes in between:
  // the sorted view is cached under the same lock and invalidated by
  // record()/reset().  Daemon QUERY_METRICS polls (often several percentiles
  // per poll, many polls per completion) pay O(log n) lookups, not
  // O(n log n) copies, on live runs.
  const std::lock_guard<std::mutex> lock(mutex_);
  if (flows_.empty()) return 0.0;
  if (!sorted_valid_) {
    sorted_ = flows_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
  return percentile_sorted(sorted_, p);
}

std::vector<double> LiveMetrics::flows() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return flows_;
}

}  // namespace tempofair
