// Always-on schedule invariant layer, in the style of rippled's
// InvariantCheck.cpp: a registry of compile-in checkers that verify the
// structural properties every valid schedule must satisfy -- the very
// properties the paper's guarantees rest on (Section 2's feasible-schedule
// characterization) plus the no-starvation/temporal-fairness witness that
// the dual-fitting analyses of the related work need for RR.
//
// Checkers observe the run through its *epoch structure*: an epoch is a
// maximal interval during which the alive set and all rates are constant,
// which is exactly the granularity at which the engine (generic loop and
// FastForwardCore alike) advances.  Three modes:
//
//   kOff        no checkers are built; zero cost.
//   kSampled    the release default: every Nth epoch (N =
//               invariant_sample_period) gets the full per-epoch battery,
//               end-of-run checks always execute.  Cost is one predictable
//               branch per event plus O(alive) work every Nth event --
//               near-zero on the fast path (see bench/perf_cases.cpp's
//               rr_fast_inv_* pair, gated < 3%).
//   kExhaustive every epoch is checked and a violation fails the run with
//               std::runtime_error (sanitize preset + tests).
//
// Violations never mutate the run: checkers record structured
// InvariantViolation diagnostics into InvariantStats, which the engine
// surfaces through RunResult::invariants and obs:: counters
// ("invariants.*"), so daemon operators see corrupt-run signals per session
// without log scraping.
//
// Registering a checker for a new policy or kernel:
//
//   InvariantRegistry::instance().add("my_check",
//       [](const InvariantRunProfile& p) -> std::unique_ptr<InvariantCheck> {
//         if (p.policy != "mypolicy") return nullptr;  // not applicable
//         return std::make_unique<MyCheck>(p);
//       });
//
// The factory runs once per engine run; returning nullptr opts out for
// runs the check does not apply to.  See DESIGN.md section 8.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/time_types.h"

namespace tempofair {

class Schedule;

enum class InvariantMode : std::uint8_t {
  kOff = 0,
  kSampled = 1,
  kExhaustive = 2,
};

[[nodiscard]] std::string_view to_string(InvariantMode mode) noexcept;
/// Parses "off" | "sampled" | "exhaustive"; throws std::invalid_argument.
[[nodiscard]] InvariantMode parse_invariant_mode(std::string_view text);

/// Process-wide defaults: kSampled with period 256, overridable once via the
/// TEMPOFAIR_INVARIANTS environment variable ("off", "sampled",
/// "sampled:N", "exhaustive") -- how the sanitize CI preset switches the
/// whole ctest suite to exhaustive checking without touching call sites.
[[nodiscard]] InvariantMode default_invariant_mode();
[[nodiscard]] std::size_t default_invariant_sample_period();

/// One structural violation, as recorded by a checker.
struct InvariantViolation {
  std::string check;   ///< checker name ("capacity", "no_starvation", ...)
  std::string detail;  ///< human-readable diagnostic
  Time time = 0.0;     ///< simulation time of the offending epoch/event
  JobId job = kInvalidJob;  ///< offending job, when one is identifiable
};

/// What one run's invariant checking observed; carried in RunResult.
struct InvariantStats {
  InvariantMode mode = InvariantMode::kOff;
  std::uint64_t epochs_seen = 0;     ///< epochs the run produced
  std::uint64_t epochs_checked = 0;  ///< epochs the battery actually ran on
  std::uint64_t checks_run = 0;      ///< checker x epoch invocations
  std::uint64_t violations = 0;      ///< total found (reports are capped)
  /// First kMaxInvariantReports violations, in discovery order.
  std::vector<InvariantViolation> reports;

  [[nodiscard]] bool ok() const noexcept { return violations == 0; }
};

/// Cap on stored diagnostics; the violation *count* is never capped.
inline constexpr std::size_t kMaxInvariantReports = 16;

/// One-line summary of a stats object ("3 violation(s); first: ..."),
/// used by the exhaustive-mode failure message and the CLI tools.
[[nodiscard]] std::string summarize(const InvariantStats& stats);

/// Structural facts a policy declares about its allocation rule, consumed
/// by the profile-gated checkers below.  The defaults are the safe common
/// case; policies override Policy::invariant_traits() to widen or narrow.
struct PolicyInvariantTraits {
  /// Sum of rates reaches speed * min(n_alive, machines) whenever jobs are
  /// alive (false for LAPS with beta*n < m and quantum-RR with a nonzero
  /// switch cost, which idle capacity by design).
  bool work_conserving = true;
  /// Every alive job receives a strictly positive rate in every epoch --
  /// the RR-family no-starvation witness.
  bool shares_all_alive = false;
  /// All alive jobs receive the same rate speed * min(1, m/n) -- the
  /// temporal-fairness witness of plain Round Robin.
  bool equal_share = false;
};

/// Everything a checker factory may condition on: the run constants, the
/// resolved policy name, and the policy's declared traits.
struct InvariantRunProfile {
  int machines = 1;
  double speed = 1.0;
  std::string policy;
  PolicyInvariantTraits traits;
};

/// One epoch as seen by the checkers: the alive set (in any stable order),
/// the parallel rates (or one uniform rate), and -- when the caller's data
/// layout has them -- the parallel remaining-work and size columns.
/// Checkers must tolerate empty remaining/sizes spans (the kUniformShare
/// fast path keeps neither in id order).
struct InvariantEpoch {
  Time begin = 0.0;
  Time end = 0.0;
  std::span<const JobId> jobs;
  std::span<const double> rates;  ///< parallel to jobs; empty when uniform
  double uniform_rate = 0.0;
  bool uniform = false;
  std::span<const Work> remaining;  ///< before the epoch; may be empty
  std::span<const Work> sizes;      ///< may be empty
  /// Attained service before the epoch, parallel to jobs; empty when the
  /// caller's layout does not track it.  Enables the attained-accounting
  /// witness the attained-dependent fast-forward kernels register.
  std::span<const Work> attained;
  /// True when `remaining` is sorted descending (the kUniformShare fast
  /// path's primary layout): with a uniform rate the per-epoch monotone
  /// checks collapse to the minimum element, keeping checked epochs O(1).
  bool remaining_sorted_descending = false;

  [[nodiscard]] std::size_t n() const noexcept { return jobs.size(); }
  [[nodiscard]] double rate(std::size_t i) const noexcept {
    return uniform ? uniform_rate : rates[i];
  }
  [[nodiscard]] Time length() const noexcept { return end - begin; }
};

/// Context for the end-of-run checks.
struct InvariantFinalizeContext {
  /// The finished schedule (always present on engine-driven runs).
  const Schedule* schedule = nullptr;
  /// Per-job traced work, indexed by JobId; empty when the caller did not
  /// accumulate it (the inline engine path).  Only meaningful together
  /// with trace_complete.
  std::span<const Work> traced_done;
  /// True when every epoch of the run was observed (exhaustive mode /
  /// offline trace replay), enabling the lost-work accounting check.
  bool trace_complete = false;
};

class InvariantSet;

/// Base class of one compiled-in checker.  Hooks are only invoked while a
/// run is active; implementations report violations via report() and may
/// keep per-run state (a fresh instance is built per run).
class InvariantCheck {
 public:
  virtual ~InvariantCheck() = default;
  InvariantCheck() = default;
  InvariantCheck(const InvariantCheck&) = delete;
  InvariantCheck& operator=(const InvariantCheck&) = delete;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  /// Called for every checked epoch (every epoch in exhaustive mode, every
  /// Nth in sampled mode).
  virtual void on_epoch(const InvariantEpoch& epoch) = 0;
  /// Called once at end of run (any mode but kOff).
  virtual void finalize(const InvariantFinalizeContext& ctx) { (void)ctx; }

 protected:
  /// Records a violation against this checker's name.
  void report(std::string detail, Time time, JobId job = kInvalidJob);

 private:
  friend class InvariantSet;
  InvariantSet* set_ = nullptr;
};

/// Factory: builds a checker for a run, or nullptr when not applicable.
using InvariantCheckFactory = std::function<std::unique_ptr<InvariantCheck>(
    const InvariantRunProfile& profile)>;

/// Process-wide registry of checker factories.  The built-in battery
/// (rate_bounds, capacity, work_conservation, monotone_remaining,
/// completion_consistency, no_starvation, temporal_fairness) registers
/// itself; policies/kernels add their own via add().  Thread-safe.
class InvariantRegistry {
 public:
  [[nodiscard]] static InvariantRegistry& instance();

  /// Registers `factory` under `name`; later registrations run after the
  /// built-ins, in registration order.
  void add(std::string name, InvariantCheckFactory factory);
  /// Instantiates every applicable checker for `profile`.
  [[nodiscard]] std::vector<std::unique_ptr<InvariantCheck>> build(
      const InvariantRunProfile& profile) const;
  /// Registered checker names, registration order.
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  InvariantRegistry();
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// The per-run harness the engine (and the offline battery) drives.  Usage:
///
///   set.begin_run(profile, mode, period, &schedule);
///   per event with dt > 0:  if (set.epoch_due()) set.check_epoch(epoch);
///   set.finish(ctx);   // end-of-run checks + obs counters
///
/// Reusable across runs; not thread-safe.
class InvariantSet {
 public:
  InvariantSet() = default;

  void begin_run(const InvariantRunProfile& profile, InvariantMode mode,
                 std::size_t sample_period, const Schedule* schedule);

  /// True when any checker is active this run.
  [[nodiscard]] bool active() const noexcept { return !checks_.empty(); }

  /// One call per clock-advancing event; counts the epoch and decides
  /// whether it is due the full battery.  Kept inline: this is the only
  /// per-event cost the layer adds to the engine's hot loops.
  [[nodiscard]] bool epoch_due() noexcept {
    if (checks_.empty()) return false;
    ++stats_.epochs_seen;
    if (mode_ == InvariantMode::kExhaustive) return true;
    if (--countdown_ > 0) return false;
    countdown_ = period_;
    return true;
  }

  /// Runs every checker on `epoch`.  Only call after epoch_due().
  void check_epoch(const InvariantEpoch& epoch);

  /// Runs the end-of-run checks and flushes the obs:: counters.
  void finish(std::span<const Work> traced_done = {});

  [[nodiscard]] const InvariantStats& stats() const noexcept { return stats_; }
  /// Moves the stats out (leaves the set finished-empty until begin_run).
  [[nodiscard]] InvariantStats take_stats() noexcept {
    return std::move(stats_);
  }

  /// Scratch buffers callers may use to gather remaining/size columns for
  /// check_epoch without allocating per checked epoch.
  [[nodiscard]] std::vector<Work>& scratch_remaining() noexcept {
    return scratch_rem_;
  }
  [[nodiscard]] std::vector<Work>& scratch_sizes() noexcept {
    return scratch_size_;
  }
  [[nodiscard]] std::vector<double>& scratch_rates() noexcept {
    return scratch_rates_;
  }
  [[nodiscard]] std::vector<Work>& scratch_attained() noexcept {
    return scratch_att_;
  }

 private:
  friend class InvariantCheck;
  void record(std::string_view check, std::string detail, Time time,
              JobId job);

  std::vector<std::unique_ptr<InvariantCheck>> checks_;
  InvariantStats stats_;
  InvariantMode mode_ = InvariantMode::kOff;
  std::size_t period_ = 1;
  std::size_t countdown_ = 1;
  const Schedule* schedule_ = nullptr;
  bool trace_complete_ = false;
  std::vector<Work> scratch_rem_;
  std::vector<Work> scratch_size_;
  std::vector<double> scratch_rates_;
  std::vector<Work> scratch_att_;
};

/// Offline battery: replays a recorded schedule (trace + completions)
/// through the full checker set, exhaustively.  This is what the
/// engine/fast-forward equivalence harness and the corrupted-schedule
/// negative tests feed; an engine-produced schedule must come back clean.
[[nodiscard]] InvariantStats check_schedule(const Schedule& schedule,
                                            const InvariantRunProfile& profile);

/// Throws std::runtime_error describing the first violation when stats is
/// not ok(); the exhaustive-mode teeth.
void throw_if_violated(const InvariantStats& stats,
                       std::string_view policy_name);

namespace obs_counters {
inline constexpr const char* kInvariantRuns = "invariants.runs";
inline constexpr const char* kInvariantEpochsChecked =
    "invariants.epochs_checked";
inline constexpr const char* kInvariantViolations = "invariants.violations";
}  // namespace obs_counters

}  // namespace tempofair
