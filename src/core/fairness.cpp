#include "core/fairness.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tempofair {

double jain_index(std::span<const double> rates) {
  if (rates.empty()) return 1.0;
  double sum = 0.0, sq = 0.0;
  for (double r : rates) {
    sum += r;
    sq += r * r;
  }
  if (sq <= 0.0) return 1.0;  // all-zero allocation treated as (vacuously) fair
  return (sum * sum) / (static_cast<double>(rates.size()) * sq);
}

FairnessReport fairness_report(const Schedule& schedule) {
  if (!schedule.has_trace()) {
    throw std::invalid_argument("fairness_report: schedule has no recorded trace");
  }
  FairnessReport rep;
  rep.jain_min = 1.0;

  double jain_weighted = 0.0;
  double min_share_weighted = 0.0;
  double starved_time = 0.0;
  double busy = 0.0;

  // Service lag per job: integral of fair share minus attained service,
  // tracked across intervals.
  std::vector<double> lag(schedule.n(), 0.0);

  const double speed = schedule.speed();
  const int m = schedule.machines();
  std::vector<double> rates;

  for (const TraceIntervalView iv : schedule.trace()) {
    const double len = iv.length();
    const std::size_t n = iv.alive_count();
    if (n == 0) continue;
    busy += len;

    rates.clear();
    bool any_starved = false;
    double min_rate = kInfiniteTime;
    for (std::size_t i = 0; i < n; ++i) {
      const double r = iv.rate(i);
      rates.push_back(r);
      min_rate = std::min(min_rate, r);
      if (r <= kAbsEps) any_starved = true;
    }

    const double fair_share =
        speed * std::min(1.0, static_cast<double>(m) / static_cast<double>(n));

    const double j = jain_index(rates);
    jain_weighted += j * len;
    if (n >= 2) rep.jain_min = std::min(rep.jain_min, j);

    min_share_weighted += (fair_share > 0.0 ? min_rate / fair_share : 1.0) * len;
    if (any_starved) starved_time += len;

    for (std::size_t i = 0; i < n; ++i) {
      double& l = lag[iv.job(i)];
      l += (fair_share - iv.rate(i)) * len;
      rep.max_service_lag = std::max(rep.max_service_lag, l);
    }
  }

  rep.busy_time = busy;
  if (busy > 0.0) {
    rep.jain_time_avg = jain_weighted / busy;
    rep.min_share_time_avg = min_share_weighted / busy;
    rep.starved_time_fraction = starved_time / busy;
  }
  return rep;
}

std::vector<std::pair<Time, std::size_t>> alive_count_curve(
    const Schedule& schedule) {
  if (!schedule.has_trace()) {
    throw std::invalid_argument("alive_count_curve: schedule has no recorded trace");
  }
  std::vector<std::pair<Time, std::size_t>> curve;
  Time prev_end = -kInfiniteTime;
  for (const TraceIntervalView iv : schedule.trace()) {
    if (!curve.empty() && !approx_equal(iv.begin(), prev_end)) {
      curve.emplace_back(prev_end, 0);  // idle gap
    }
    if (curve.empty() || curve.back().second != iv.alive_count()) {
      curve.emplace_back(iv.begin(), iv.alive_count());
    }
    prev_end = iv.end();
  }
  if (!curve.empty()) curve.emplace_back(prev_end, 0);
  return curve;
}

std::vector<std::pair<Time, double>> service_lag_curve(
    const Schedule& schedule, JobId job) {
  if (!schedule.has_trace()) {
    throw std::invalid_argument("service_lag_curve: schedule has no recorded trace");
  }
  const double speed = schedule.speed();
  const int m = schedule.machines();
  const TraceArena& trace = schedule.trace();

  std::vector<std::pair<Time, double>> curve;
  const JobTraceView slices = trace.job_trace(job);
  if (slices.empty()) return curve;

  curve.reserve(slices.size() + 1);
  curve.emplace_back(slices.front().begin, 0.0);
  double lag = 0.0;
  for (const JobSlice s : slices) {
    const std::size_t n_t = trace[s.interval].alive_count();
    const double fair_share =
        speed * std::min(1.0, static_cast<double>(m) / static_cast<double>(n_t));
    lag += (fair_share - s.rate) * s.length();
    curve.emplace_back(s.end, lag);
  }
  return curve;
}

}  // namespace tempofair
