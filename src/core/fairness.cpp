#include "core/fairness.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

namespace tempofair {

double jain_index(std::span<const double> rates) {
  if (rates.empty()) return 1.0;
  double sum = 0.0, sq = 0.0;
  for (double r : rates) {
    sum += r;
    sq += r * r;
  }
  if (sq <= 0.0) return 1.0;  // all-zero allocation treated as (vacuously) fair
  return (sum * sum) / (static_cast<double>(rates.size()) * sq);
}

FairnessReport fairness_report(const Schedule& schedule) {
  if (!schedule.has_trace()) {
    throw std::invalid_argument("fairness_report: schedule has no recorded trace");
  }
  FairnessReport rep;
  rep.jain_min = 1.0;

  double jain_weighted = 0.0;
  double min_share_weighted = 0.0;
  double starved_time = 0.0;
  double busy = 0.0;

  // Service lag per job: integral of fair share minus attained service,
  // tracked across intervals.
  std::unordered_map<JobId, double> lag;  // fair-share service minus attained
  lag.reserve(schedule.n());

  const double speed = schedule.speed();
  const int m = schedule.machines();
  std::vector<double> rates;

  for (const TraceInterval& iv : schedule.trace()) {
    const double len = iv.length();
    const std::size_t n = iv.alive_count();
    if (n == 0) continue;
    busy += len;

    rates.clear();
    double rate_sum = 0.0;
    bool any_starved = false;
    double min_rate = kInfiniteTime;
    for (const RateShare& s : iv.shares) {
      rates.push_back(s.rate);
      rate_sum += s.rate;
      min_rate = std::min(min_rate, s.rate);
      if (s.rate <= kAbsEps) any_starved = true;
    }
    (void)rate_sum;

    const double fair_share =
        speed * std::min(1.0, static_cast<double>(m) / static_cast<double>(n));

    const double j = jain_index(rates);
    jain_weighted += j * len;
    if (n >= 2) rep.jain_min = std::min(rep.jain_min, j);

    min_share_weighted += (fair_share > 0.0 ? min_rate / fair_share : 1.0) * len;
    if (any_starved) starved_time += len;

    for (const RateShare& s : iv.shares) {
      double& l = lag[s.job];
      l += (fair_share - s.rate) * len;
      rep.max_service_lag = std::max(rep.max_service_lag, l);
    }
  }

  rep.busy_time = busy;
  if (busy > 0.0) {
    rep.jain_time_avg = jain_weighted / busy;
    rep.min_share_time_avg = min_share_weighted / busy;
    rep.starved_time_fraction = starved_time / busy;
  }
  return rep;
}

std::vector<std::pair<Time, std::size_t>> alive_count_curve(
    const Schedule& schedule) {
  if (!schedule.has_trace()) {
    throw std::invalid_argument("alive_count_curve: schedule has no recorded trace");
  }
  std::vector<std::pair<Time, std::size_t>> curve;
  Time prev_end = -kInfiniteTime;
  for (const TraceInterval& iv : schedule.trace()) {
    if (!curve.empty() && !approx_equal(iv.begin, prev_end)) {
      curve.emplace_back(prev_end, 0);  // idle gap
    }
    if (curve.empty() || curve.back().second != iv.alive_count()) {
      curve.emplace_back(iv.begin, iv.alive_count());
    }
    prev_end = iv.end;
  }
  if (!curve.empty()) curve.emplace_back(prev_end, 0);
  return curve;
}

}  // namespace tempofair
