#include "core/trace_arena.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace tempofair {

namespace {

template <typename T>
std::size_t capacity_bytes(const std::vector<T>& v) noexcept {
  return v.capacity() * sizeof(T);
}

// Grows a column to hold `extra` more elements using a 1.25x geometric
// factor instead of the standard library's 2x.  The trace columns dominate
// the simulator's footprint, and a tight factor caps the capacity slack at
// 25% (vs. up to 100%) while staying amortized O(1) per element.
template <typename T>
void grow_for(std::vector<T>& v, std::size_t extra) {
  const std::size_t needed = v.size() + extra;
  if (needed <= v.capacity()) return;
  v.reserve(std::max(needed, v.capacity() + v.capacity() / 4 + 1));
}

}  // namespace

JobSlice JobTraceView::operator[](std::size_t i) const noexcept {
  const std::size_t iv = intervals_[i];
  const TraceIntervalView view = (*arena_)[iv];
  return JobSlice{iv, view.begin(), view.end(), view.rate(positions_[i])};
}

Work JobTraceView::total_work() const noexcept {
  Work total = 0.0;
  for (std::size_t i = 0; i < n_; ++i) {
    const JobSlice s = (*this)[i];
    total += s.rate * s.length();
  }
  return total;
}

void TraceArena::clear() noexcept {
  begin_.clear();
  end_.clear();
  job_off_.assign(1, 0);
  rate_off_.assign(1, 0);
  ids_.clear();
  rates_.clear();
  index_built_ = false;
  jidx_off_.clear();
  jidx_interval_.clear();
  jidx_pos_.clear();
}

void TraceArena::reserve(std::size_t intervals, std::size_t entries) {
  begin_.reserve(intervals);
  end_.reserve(intervals);
  job_off_.reserve(intervals + 1);
  rate_off_.reserve(intervals + 1);
  ids_.reserve(entries);
  rates_.reserve(entries);
  peak_bytes_ = std::max(peak_bytes_, memory_bytes());
}

void TraceArena::append(Time begin, Time end, std::span<const JobId> jobs,
                        std::span<const double> rates) {
  if (jobs.size() != rates.size()) {
    throw std::invalid_argument(
        "TraceArena::append: jobs/rates size mismatch");
  }
  if (!(end > begin)) {
    throw std::invalid_argument(
        "TraceArena::append: interval must have end > begin");
  }
  grow_for(begin_, 1);
  grow_for(end_, 1);
  grow_for(job_off_, 1);
  grow_for(rate_off_, 1);
  grow_for(ids_, jobs.size());
  grow_for(rates_, rates.size());

  begin_.push_back(begin);
  end_.push_back(end);
  ids_.insert(ids_.end(), jobs.begin(), jobs.end());
  job_off_.push_back(ids_.size());

  // Uniform-rate compression (I3): when every rate is bitwise-equal --
  // true for every Round Robin interval -- store the shared value once.
  bool uniform = !rates.empty();
  for (double r : rates) {
    if (r != rates[0]) {
      uniform = false;
      break;
    }
  }
  if (uniform) {
    rates_.push_back(rates[0]);
  } else {
    rates_.insert(rates_.end(), rates.begin(), rates.end());
  }
  rate_off_.push_back(rates_.size());

  index_built_ = false;
  peak_bytes_ = std::max(peak_bytes_, memory_bytes());
}

void TraceArena::append_uniform(Time begin, Time end,
                                std::span<const JobId> jobs, double rate) {
  if (!(end > begin)) {
    throw std::invalid_argument(
        "TraceArena::append_uniform: interval must have end > begin");
  }
  grow_for(begin_, 1);
  grow_for(end_, 1);
  grow_for(job_off_, 1);
  grow_for(rate_off_, 1);
  grow_for(ids_, jobs.size());
  grow_for(rates_, 1);

  begin_.push_back(begin);
  end_.push_back(end);
  ids_.insert(ids_.end(), jobs.begin(), jobs.end());
  job_off_.push_back(ids_.size());
  if (!jobs.empty()) rates_.push_back(rate);
  rate_off_.push_back(rates_.size());

  index_built_ = false;
  peak_bytes_ = std::max(peak_bytes_, memory_bytes());
}

void TraceArena::append(Time begin, Time end,
                        std::initializer_list<RateShare> shares) {
  std::vector<JobId> jobs;
  std::vector<double> rates;
  jobs.reserve(shares.size());
  rates.reserve(shares.size());
  for (const RateShare& s : shares) {
    jobs.push_back(s.job);
    rates.push_back(s.rate);
  }
  append(begin, end, jobs, rates);
}

void TraceArena::shrink_to_fit() {
  begin_.shrink_to_fit();
  end_.shrink_to_fit();
  job_off_.shrink_to_fit();
  rate_off_.shrink_to_fit();
  ids_.shrink_to_fit();
  rates_.shrink_to_fit();
}

TraceIntervalView TraceArena::operator[](std::size_t i) const noexcept {
  const std::uint64_t jo = job_off_[i];
  return TraceIntervalView(begin_[i], end_[i], ids_.data() + jo,
                           rates_.data() + rate_off_[i],
                           static_cast<std::size_t>(job_off_[i + 1] - jo),
                           interval_uniform(i));
}

void TraceArena::ensure_job_index() const {
  if (index_built_) return;
  if (size() > std::numeric_limits<std::uint32_t>::max()) {
    throw std::length_error("TraceArena: too many intervals for job index");
  }
  JobId max_id = 0;
  for (JobId id : ids_) max_id = std::max(max_id, id);
  const std::size_t n_jobs = ids_.empty() ? 0 : static_cast<std::size_t>(max_id) + 1;

  // Counting sort of flat entries by job id, preserving interval order.
  jidx_off_.assign(n_jobs + 1, 0);
  for (JobId id : ids_) ++jidx_off_[id + 1];
  for (std::size_t j = 0; j < n_jobs; ++j) jidx_off_[j + 1] += jidx_off_[j];

  jidx_interval_.resize(ids_.size());
  jidx_pos_.resize(ids_.size());
  std::vector<std::uint64_t> cursor(jidx_off_.begin(), jidx_off_.end() - 1);
  for (std::size_t i = 0; i < size(); ++i) {
    for (std::uint64_t k = job_off_[i]; k < job_off_[i + 1]; ++k) {
      const std::uint64_t slot = cursor[ids_[k]]++;
      jidx_interval_[slot] = static_cast<std::uint32_t>(i);
      jidx_pos_[slot] = static_cast<std::uint32_t>(k - job_off_[i]);
    }
  }
  index_built_ = true;
}

JobTraceView TraceArena::job_trace(JobId job) const {
  ensure_job_index();
  const std::size_t n_jobs = jidx_off_.empty() ? 0 : jidx_off_.size() - 1;
  if (job >= n_jobs) return JobTraceView(this, nullptr, nullptr, 0);
  const std::uint64_t lo = jidx_off_[job];
  const std::uint64_t hi = jidx_off_[job + 1];
  return JobTraceView(this, jidx_interval_.data() + lo, jidx_pos_.data() + lo,
                      static_cast<std::size_t>(hi - lo));
}

std::size_t TraceArena::memory_bytes() const noexcept {
  return capacity_bytes(begin_) + capacity_bytes(end_) +
         capacity_bytes(job_off_) + capacity_bytes(rate_off_) +
         capacity_bytes(ids_) + capacity_bytes(rates_);
}

std::size_t TraceArena::index_memory_bytes() const noexcept {
  return capacity_bytes(jidx_off_) + capacity_bytes(jidx_interval_) +
         capacity_bytes(jidx_pos_);
}

}  // namespace tempofair
