#include "core/engine.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

namespace tempofair {

namespace {

struct LiveJob {
  JobId id;
  Time release;
  Work size;
  Work remaining;
  Work attained;
  double weight;
};

/// Builds the policy-facing view of the alive set, hiding sizes if requested.
void build_views(const std::vector<LiveJob>& alive, bool hide,
                 std::vector<AliveJob>& out) {
  out.clear();
  out.reserve(alive.size());
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (const LiveJob& j : alive) {
    out.push_back(AliveJob{j.id, j.release, j.attained, hide ? nan : j.size,
                           hide ? nan : j.remaining, j.weight});
  }
}

[[noreturn]] void engine_fail(const std::string& msg) {
  throw std::runtime_error("tempofair::simulate: " + msg);
}

}  // namespace

Schedule simulate(const Instance& instance, Policy& policy,
                  const EngineOptions& options) {
  if (options.machines < 1) {
    throw std::invalid_argument("simulate: machines must be >= 1");
  }
  if (!(options.speed > 0.0) || !std::isfinite(options.speed)) {
    throw std::invalid_argument("simulate: speed must be positive and finite");
  }
  if (options.hide_sizes && policy.clairvoyant()) {
    throw std::invalid_argument("simulate: cannot hide sizes from clairvoyant policy " +
                                std::string(policy.name()));
  }

  Schedule schedule(instance, options.machines, options.speed);
  schedule.set_trace_recorded(options.record_trace);
  policy.reset();

  if (instance.empty()) return schedule;

  // Pending arrivals, consumed in (release, id) order.
  std::span<const JobId> order = instance.release_order();
  std::size_t next_arrival = 0;

  std::vector<LiveJob> alive;  // kept sorted by id
  alive.reserve(instance.n());

  std::vector<AliveJob> views;
  Time now = instance.job(order[0]).release;

  const double cap = options.speed * options.machines;
  const double rate_tol = 1e-7 * std::max(1.0, cap);

  auto admit_arrivals = [&](Time t) {
    while (next_arrival < order.size() &&
           instance.job(order[next_arrival]).release <= t + kAbsEps) {
      const Job& j = instance.job(order[next_arrival]);
      LiveJob lj{j.id, j.release, j.size, j.size, 0.0, j.weight};
      auto pos = std::lower_bound(
          alive.begin(), alive.end(), lj,
          [](const LiveJob& a, const LiveJob& b) { return a.id < b.id; });
      alive.insert(pos, lj);
      const double nan = std::numeric_limits<double>::quiet_NaN();
      AliveJob view{j.id, j.release, 0.0, options.hide_sizes ? nan : j.size,
                    options.hide_sizes ? nan : j.size, j.weight};
      policy.on_arrival(view, t);
      ++next_arrival;
    }
  };

  admit_arrivals(now);

  std::size_t steps = 0;
  std::vector<std::size_t> completing;  // indices into `alive`

  while (!alive.empty() || next_arrival < order.size()) {
    if (++steps > options.max_steps) {
      engine_fail("exceeded max_steps=" + std::to_string(options.max_steps) +
                  " with policy " + std::string(policy.name()));
    }

    if (alive.empty()) {
      // Idle gap: jump to the next arrival.
      now = instance.job(order[next_arrival]).release;
      admit_arrivals(now);
      continue;
    }

    build_views(alive, options.hide_sizes, views);
    SchedulerContext ctx{now, options.machines, options.speed, views,
                         !options.hide_sizes};
    RateDecision decision = policy.rates(ctx);

    if (decision.rates.size() != alive.size()) {
      engine_fail("policy " + std::string(policy.name()) + " returned " +
                  std::to_string(decision.rates.size()) + " rates for " +
                  std::to_string(alive.size()) + " alive jobs");
    }
    double rate_sum = 0.0;
    for (double& r : decision.rates) {
      r = clamp_nonneg(r, rate_tol);
      if (r < 0.0 || !std::isfinite(r)) engine_fail("policy returned negative/non-finite rate");
      if (r > options.speed + rate_tol) {
        engine_fail("policy rate " + std::to_string(r) + " exceeds per-machine speed " +
                    std::to_string(options.speed));
      }
      r = std::min(r, options.speed);
      rate_sum += r;
    }
    if (rate_sum > cap + rate_tol) {
      engine_fail("policy rates sum " + std::to_string(rate_sum) +
                  " exceeds capacity " + std::to_string(cap));
    }
    if (!(decision.max_duration > 0.0)) {
      engine_fail("policy returned non-positive max_duration");
    }

    // Next event: arrival, earliest completion, or policy breakpoint.
    Time dt = decision.max_duration;
    if (next_arrival < order.size()) {
      dt = std::min(dt, instance.job(order[next_arrival]).release - now);
    }
    Time completion_dt = kInfiniteTime;
    for (std::size_t i = 0; i < alive.size(); ++i) {
      if (decision.rates[i] > 0.0) {
        completion_dt = std::min(completion_dt, alive[i].remaining / decision.rates[i]);
      }
    }
    dt = std::min(dt, completion_dt);
    if (std::isfinite(options.max_time)) {
      if (now >= options.max_time) {
        engine_fail("simulated clock passed max_time");
      }
      dt = std::min(dt, options.max_time - now);
    }
    if (!std::isfinite(dt)) {
      engine_fail("deadlock: policy " + std::string(policy.name()) +
                  " allocates zero rate to all " + std::to_string(alive.size()) +
                  " alive jobs with no arrival or breakpoint pending");
    }
    dt = std::max(dt, 0.0);

    // Advance all jobs analytically.
    if (dt > 0.0) {
      if (options.record_trace) {
        TraceInterval iv;
        iv.begin = now;
        iv.end = now + dt;
        iv.shares.reserve(alive.size());
        for (std::size_t i = 0; i < alive.size(); ++i) {
          iv.shares.push_back(RateShare{alive[i].id, decision.rates[i]});
        }
        schedule.push_interval(std::move(iv));
      }
      for (std::size_t i = 0; i < alive.size(); ++i) {
        const Work delta = decision.rates[i] * dt;
        alive[i].attained += delta;
        alive[i].remaining -= delta;
      }
      now += dt;
    }

    // Collect completions: jobs whose remaining is (numerically) exhausted.
    completing.clear();
    for (std::size_t i = 0; i < alive.size(); ++i) {
      if (alive[i].remaining <= kRelEps * alive[i].size + kAbsEps) {
        completing.push_back(i);
      }
    }
    if (dt == 0.0 && completing.empty()) {
      // A zero-length step must make progress through arrivals; otherwise the
      // policy's breakpoint fired immediately without changing anything.
      // Allow it (quantum policies rotate internal state on the rates() call),
      // but the step guard above prevents livelock.
    }
    // Remove completed jobs (iterate in reverse to keep indices valid).
    for (auto it = completing.rbegin(); it != completing.rend(); ++it) {
      const std::size_t i = *it;
      schedule.set_completion(alive[i].id, now);
      policy.on_completion(alive[i].id, now);
      alive.erase(alive.begin() + static_cast<std::ptrdiff_t>(i));
    }

    admit_arrivals(now);
  }

  return schedule;
}

}  // namespace tempofair
