#include "core/engine.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "obs/obs.h"
#include "policies/registry.h"

namespace tempofair {

namespace {

[[noreturn]] void engine_fail(const std::string& msg) {
  throw std::runtime_error("tempofair::simulate: " + msg);
}

void check_cancel(const EngineOptions& options, std::string_view policy_name,
                  Time now) {
  if (options.cancel != nullptr &&
      options.cancel->load(std::memory_order_relaxed)) {
    throw RunCancelled("tempofair::run: cancelled with policy " +
                       std::string(policy_name) + " at t=" +
                       std::to_string(now));
  }
}

/// Packages a finished schedule as a RunResult (stats computed once here,
/// where every facade overload converges).
[[nodiscard]] RunResult finish_run(Schedule schedule, std::string_view policy,
                                   double wall_seconds) {
  RunResult result;
  result.stats = flow_stats(schedule);
  result.schedule = std::move(schedule);
  result.policy = std::string(policy);
  result.wall_seconds = wall_seconds;
  return result;
}

class WallTimer {
 public:
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_ =
      std::chrono::steady_clock::now();
};

}  // namespace

EngineOptions RunRequest::engine_options() const {
  EngineOptions options;
  options.machines = machines;
  options.speed = speed;
  options.record_trace = record_trace;
  options.hide_sizes = hide_sizes;
  options.max_time = max_time;
  options.max_steps = max_steps;
  options.max_zero_progress_steps = max_zero_progress_steps;
  options.use_fast_path = use_fast_path;
  options.invariants = invariants;
  options.invariant_sample_period = invariant_sample_period;
  options.live_metrics = live;
  options.cancel = cancel;
  return options;
}

RunResult EngineCore::run(const Instance& instance, const RunRequest& request) {
  const std::unique_ptr<Policy> policy = make_policy(request.policy);
  return run(instance, *policy, request);
}

RunResult EngineCore::run(JobStream& stream, const RunRequest& request) {
  const std::unique_ptr<Policy> policy = make_policy(request.policy);
  return run(stream, *policy, request);
}

RunResult EngineCore::run(const Instance& instance, Policy& policy,
                          const RunRequest& request) {
  const WallTimer timer;
  InvariantStats inv_stats;
  EngineOptions options = request.engine_options();
  options.invariant_stats = &inv_stats;
  Schedule schedule = run(instance, policy, options);
  RunResult result =
      finish_run(std::move(schedule), policy.name(), timer.seconds());
  result.invariants = std::move(inv_stats);
  return result;
}

RunResult EngineCore::run(JobStream& stream, Policy& policy,
                          const RunRequest& request) {
  const WallTimer timer;
  InvariantStats inv_stats;
  EngineOptions options = request.engine_options();
  options.invariant_stats = &inv_stats;
  Schedule schedule = run(stream, policy, options);
  RunResult result =
      finish_run(std::move(schedule), policy.name(), timer.seconds());
  result.invariants = std::move(inv_stats);
  return result;
}

Schedule EngineCore::run(const Instance& instance, Policy& policy,
                         const EngineOptions& options) {
  if (options.machines < 1) {
    throw std::invalid_argument("simulate: machines must be >= 1");
  }
  if (!(options.speed > 0.0) || !std::isfinite(options.speed)) {
    throw std::invalid_argument("simulate: speed must be positive and finite");
  }
  if (options.hide_sizes && policy.clairvoyant()) {
    throw std::invalid_argument("simulate: cannot hide sizes from clairvoyant policy " +
                                std::string(policy.name()));
  }

  if (takes_fast_path(policy, options)) {
    policy.reset();
    return fast_.run(instance, policy.fast_forward(), options, policy.name(),
                     policy.invariant_traits());
  }

  obs::ScopedTimer run_timer("engine.run");

  Schedule schedule(instance, options.machines, options.speed);
  schedule.set_trace_recorded(options.record_trace);
  policy.reset();

  inv_.begin_run(
      InvariantRunProfile{options.machines, options.speed,
                          std::string(policy.name()),
                          policy.invariant_traits()},
      options.invariants, options.invariant_sample_period, &schedule);
  // End-of-run checks + stats hand-off; the exhaustive-mode throw happens
  // only after the stats are copied out, so callers see the diagnostics.
  auto finish_invariants = [&] {
    inv_.finish();
    if (options.invariant_stats != nullptr) {
      *options.invariant_stats = inv_.stats();
    }
    if (options.invariants == InvariantMode::kExhaustive) {
      throw_if_violated(inv_.stats(), policy.name());
    }
  };

  if (options.live_metrics != nullptr) {
    options.live_metrics->set_expected(instance.n());
  }

  if (instance.empty()) {
    finish_invariants();
    obs::add("engine.runs", 1);
    return schedule;
  }

  // Pending arrivals, consumed in (release, id) order.
  std::span<const JobId> order = instance.release_order();
  std::size_t next_arrival = 0;

  alive_.clear();
  views_.clear();
  ids_.clear();
  alive_.reserve(instance.n());
  views_.reserve(instance.n());
  ids_.reserve(instance.n());

  Time now = instance.job(order[0]).release;

  const double cap = options.speed * options.machines;
  const double rate_tol = 1e-7 * std::max(1.0, cap);
  const bool hide = options.hide_sizes;
  const double nan = std::numeric_limits<double>::quiet_NaN();

  // Inserts all arrivals due at time t into the alive set (and its
  // policy-facing views), keeping all three parallel arrays sorted by id.
  auto admit_arrivals = [&](Time t) -> std::size_t {
    std::size_t admitted = 0;
    while (next_arrival < order.size() &&
           instance.job(order[next_arrival]).release <= t + kAbsEps) {
      const Job& j = instance.job(order[next_arrival]);
      const auto pos = static_cast<std::ptrdiff_t>(
          std::lower_bound(ids_.begin(), ids_.end(), j.id) - ids_.begin());
      ids_.insert(ids_.begin() + pos, j.id);
      alive_.insert(alive_.begin() + pos,
                    LiveJob{j.id, j.release, j.size, j.size, 0.0, j.weight});
      const AliveJob view{j.id, j.release, 0.0, hide ? nan : j.size,
                          hide ? nan : j.size, j.weight};
      views_.insert(views_.begin() + pos, view);
      policy.on_arrival(view, t);
      ++next_arrival;
      ++admitted;
    }
    return admitted;
  };

  admit_arrivals(now);

  std::size_t steps = 0;
  std::size_t zero_progress_streak = 0;
  std::size_t intervals_emitted = 0;

  while (!alive_.empty() || next_arrival < order.size()) {
    check_cancel(options, policy.name(), now);
    if (++steps > options.max_steps) {
      engine_fail("exceeded max_steps=" + std::to_string(options.max_steps) +
                  " with policy " + std::string(policy.name()));
    }

    if (alive_.empty()) {
      // Idle gap: jump to the next arrival.
      now = instance.job(order[next_arrival]).release;
      admit_arrivals(now);
      continue;
    }

    SchedulerContext ctx{now, options.machines, options.speed, views_,
                         !hide};
    RateDecision decision = policy.rates(ctx);

    if (decision.rates.size() != alive_.size()) {
      engine_fail("policy " + std::string(policy.name()) + " returned " +
                  std::to_string(decision.rates.size()) + " rates for " +
                  std::to_string(alive_.size()) + " alive jobs");
    }

    // Single pass over the alive set: validate + clamp rates, find the
    // earliest predicted completion, and collect the near-minimum
    // candidates so completion detection after the advance does not need
    // another full scan.
    double rate_sum = 0.0;
    Time completion_dt = kInfiniteTime;
    candidates_.clear();
    for (std::size_t i = 0; i < alive_.size(); ++i) {
      double& r = decision.rates[i];
      r = clamp_nonneg(r, rate_tol);
      if (r < 0.0 || !std::isfinite(r)) engine_fail("policy returned negative/non-finite rate");
      if (r > options.speed + rate_tol) {
        engine_fail("policy rate " + std::to_string(r) + " exceeds per-machine speed " +
                    std::to_string(options.speed));
      }
      r = std::min(r, options.speed);
      rate_sum += r;

      const double done_thr = kRelEps * alive_[i].size + kAbsEps;
      if (r > 0.0) {
        const Time cdt = alive_[i].remaining / r;
        if (cdt < completion_dt) completion_dt = cdt;
        // Candidate iff this job could be (numerically) exhausted by a step
        // of the current minimum length.  Stale entries collected against an
        // earlier, larger minimum are filtered by the exact remaining-work
        // test after the advance.
        if (cdt <= completion_dt + done_thr / r) candidates_.push_back(i);
      } else if (alive_[i].remaining <= done_thr) {
        // Zero rate but already numerically exhausted: completes as soon as
        // the clock moves (or immediately on a zero-length step).
        candidates_.push_back(i);
      }
    }
    if (rate_sum > cap + rate_tol) {
      engine_fail("policy rates sum " + std::to_string(rate_sum) +
                  " exceeds capacity " + std::to_string(cap));
    }
    if (!(decision.max_duration > 0.0)) {
      engine_fail("policy returned non-positive max_duration");
    }

    // Next event: arrival, earliest completion, or policy breakpoint.
    Time dt = decision.max_duration;
    if (next_arrival < order.size()) {
      dt = std::min(dt, instance.job(order[next_arrival]).release - now);
    }
    dt = std::min(dt, completion_dt);
    if (std::isfinite(options.max_time)) {
      if (now >= options.max_time) {
        engine_fail("simulated clock passed max_time");
      }
      dt = std::min(dt, options.max_time - now);
    }
    if (!std::isfinite(dt)) {
      engine_fail("deadlock: policy " + std::string(policy.name()) +
                  " allocates zero rate to all " + std::to_string(alive_.size()) +
                  " alive jobs with no arrival or breakpoint pending");
    }
    dt = std::max(dt, 0.0);

    const Time step_start = now;

    // Advance all jobs analytically, emitting the trace row straight into
    // the schedule's columnar arena (no per-interval allocation).
    if (dt > 0.0) {
      if (inv_.epoch_due()) {
        auto& inv_rem = inv_.scratch_remaining();
        auto& inv_size = inv_.scratch_sizes();
        auto& inv_att = inv_.scratch_attained();
        inv_rem.resize(alive_.size());
        inv_size.resize(alive_.size());
        inv_att.resize(alive_.size());
        for (std::size_t i = 0; i < alive_.size(); ++i) {
          inv_rem[i] = alive_[i].remaining;
          inv_size[i] = alive_[i].size;
          inv_att[i] = alive_[i].attained;
        }
        InvariantEpoch epoch;
        epoch.begin = now;
        epoch.end = now + dt;
        epoch.jobs = ids_;
        epoch.rates = decision.rates;
        epoch.remaining = inv_rem;
        epoch.sizes = inv_size;
        epoch.attained = inv_att;
        inv_.check_epoch(epoch);
      }
      if (options.record_trace) {
        schedule.push_interval(now, now + dt, ids_, decision.rates);
        ++intervals_emitted;
      }
      for (std::size_t i = 0; i < alive_.size(); ++i) {
        const Work delta = decision.rates[i] * dt;
        alive_[i].attained += delta;
        alive_[i].remaining -= delta;
        views_[i].attained += delta;
        if (!hide) views_[i].remaining -= delta;
      }
      now += dt;
    }

    // Completions: only the candidates can be (numerically) exhausted.
    completing_.clear();
    for (const std::size_t i : candidates_) {
      if (alive_[i].remaining <= kRelEps * alive_[i].size + kAbsEps) {
        completing_.push_back(i);
      }
    }
    // Remove completed jobs (iterate in reverse to keep indices valid).
    for (auto it = completing_.rbegin(); it != completing_.rend(); ++it) {
      const std::size_t i = *it;
      schedule.set_completion(alive_[i].id, now);
      if (options.live_metrics != nullptr) {
        options.live_metrics->record(now - alive_[i].release);
      }
      policy.on_completion(alive_[i].id, now);
      const auto p = static_cast<std::ptrdiff_t>(i);
      alive_.erase(alive_.begin() + p);
      views_.erase(views_.begin() + p);
      ids_.erase(ids_.begin() + p);
    }

    const std::size_t admitted = admit_arrivals(now);

    // Livelock guard: a step makes progress if the clock moved, a job
    // completed, or an arrival was admitted.  A policy can legally take the
    // occasional zero-progress step (e.g. a breakpoint that fires exactly at
    // an event boundary while rotating internal state), but an unbounded run
    // of them means the simulation is stuck -- most commonly a breakpoint so
    // small that `now + dt == now` in floating point.  Fail fast with a
    // diagnostic instead of silently burning max_steps.
    if (now > step_start || !completing_.empty() || admitted > 0) {
      zero_progress_streak = 0;
    } else if (++zero_progress_streak >= options.max_zero_progress_steps) {
      engine_fail(
          "livelock: " + std::to_string(zero_progress_streak) +
          " consecutive zero-progress steps (no clock advance, completion, "
          "or arrival) at t=" + std::to_string(now) + " with " +
          std::to_string(alive_.size()) + " alive jobs; policy " +
          std::string(policy.name()) +
          " keeps returning a breakpoint (max_duration=" +
          std::to_string(decision.max_duration) +
          ") too small to advance the simulated clock");
    }
  }

  if (options.record_trace) schedule.finalize_trace();
  finish_invariants();

  obs::add("engine.runs", 1);
  obs::add("engine.events", steps);
  obs::add("engine.jobs", instance.n());
  obs::add("engine.trace_intervals", intervals_emitted);
  return schedule;
}

Schedule EngineCore::run(JobStream& stream, Policy& policy,
                         const EngineOptions& options) {
  if (options.machines < 1) {
    throw std::invalid_argument("simulate: machines must be >= 1");
  }
  if (!(options.speed > 0.0) || !std::isfinite(options.speed)) {
    throw std::invalid_argument("simulate: speed must be positive and finite");
  }
  if (options.hide_sizes && policy.clairvoyant()) {
    throw std::invalid_argument("simulate: cannot hide sizes from clairvoyant policy " +
                                std::string(policy.name()));
  }
  const FastForward ff = policy.fast_forward();
  if (!options.use_fast_path || !ff.enabled()) {
    throw std::invalid_argument(
        "simulate: streaming runs require a FastForward-capable policy and "
        "options.use_fast_path; materialize an Instance to run policy " +
        std::string(policy.name()) + " on the generic loop");
  }
  policy.reset();
  return fast_.run(stream, ff, options, policy.name(),
                   policy.invariant_traits());
}

bool EngineCore::takes_fast_path(const Policy& policy,
                                 const EngineOptions& options) const {
  return options.use_fast_path && policy.fast_forward().enabled();
}

RunResult run(const Instance& instance, const RunRequest& request) {
  EngineCore core;
  return core.run(instance, request);
}

RunResult run(JobStream& stream, const RunRequest& request) {
  EngineCore core;
  return core.run(stream, request);
}

RunResult run(const Instance& instance, Policy& policy,
              const RunRequest& request) {
  EngineCore core;
  return core.run(instance, policy, request);
}

RunResult run(JobStream& stream, Policy& policy, const RunRequest& request) {
  EngineCore core;
  return core.run(stream, policy, request);
}

}  // namespace tempofair
