#include "core/instance.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace tempofair {

namespace {

void validate_job(const Job& j) {
  if (!(j.size > 0.0) || !std::isfinite(j.size)) {
    throw std::invalid_argument("Instance: job " + std::to_string(j.id) +
                                " has non-positive or non-finite size");
  }
  if (!(j.release >= 0.0) || !std::isfinite(j.release)) {
    throw std::invalid_argument("Instance: job " + std::to_string(j.id) +
                                " has negative or non-finite release");
  }
  if (!(j.weight > 0.0) || !std::isfinite(j.weight)) {
    throw std::invalid_argument("Instance: job " + std::to_string(j.id) +
                                " has non-positive or non-finite weight");
  }
}

}  // namespace

Instance::Instance(std::vector<Job> jobs) : jobs_(std::move(jobs)) {
  min_release_ = kInfiniteTime;
  max_release_ = 0.0;
  min_size_ = std::numeric_limits<Work>::infinity();
  for (const Job& j : jobs_) {
    validate_job(j);
    total_work_ += j.size;
    max_size_ = std::max(max_size_, j.size);
    min_size_ = std::min(min_size_, j.size);
    min_release_ = std::min(min_release_, j.release);
    max_release_ = std::max(max_release_, j.release);
  }
  if (jobs_.empty()) {
    min_release_ = 0.0;
    min_size_ = 0.0;
  }
  release_order_.resize(jobs_.size());
  std::iota(release_order_.begin(), release_order_.end(), JobId{0});
  std::sort(release_order_.begin(), release_order_.end(),
            [this](JobId a, JobId b) {
              return arrives_before(jobs_[a], jobs_[b]);
            });
}

Instance Instance::from_pairs(std::span<const std::pair<Time, Work>> pairs) {
  std::vector<Job> jobs;
  jobs.reserve(pairs.size());
  JobId id = 0;
  for (const auto& [release, size] : pairs) {
    jobs.push_back(Job{id++, release, size});
  }
  return Instance(std::move(jobs));
}

Instance Instance::from_jobs(std::vector<Job> jobs) {
  std::vector<bool> seen(jobs.size(), false);
  for (const Job& j : jobs) {
    if (j.id >= jobs.size() || seen[j.id]) {
      throw std::invalid_argument(
          "Instance::from_jobs: ids must be a permutation of 0..n-1");
    }
    seen[j.id] = true;
  }
  std::sort(jobs.begin(), jobs.end(),
            [](const Job& a, const Job& b) { return a.id < b.id; });
  return Instance(std::move(jobs));
}

Instance Instance::batch(std::span<const Work> sizes, Time release) {
  std::vector<Job> jobs;
  jobs.reserve(sizes.size());
  JobId id = 0;
  for (Work s : sizes) jobs.push_back(Job{id++, release, s});
  return Instance(std::move(jobs));
}

Time Instance::horizon_bound(int machines, double speed) const {
  if (machines < 1) throw std::invalid_argument("horizon_bound: machines < 1");
  if (!(speed > 0.0)) throw std::invalid_argument("horizon_bound: speed <= 0");
  // A work-conserving schedule never idles while jobs are pending, so all
  // work is done by max_release + total_work / speed even on one machine.
  return max_release_ + total_work_ / speed + 1.0;
}

Instance Instance::normalized() const {
  std::vector<Job> jobs = jobs_;
  for (Job& j : jobs) j.release -= min_release_;
  return Instance(std::move(jobs));
}

Instance Instance::merged_with(const Instance& other) const {
  std::vector<Job> jobs = jobs_;
  jobs.reserve(jobs_.size() + other.n());
  for (Job j : other.jobs()) {
    j.id += static_cast<JobId>(jobs_.size());
    jobs.push_back(j);
  }
  return Instance(std::move(jobs));
}

std::string Instance::summary() const {
  std::ostringstream os;
  os << "Instance{n=" << n() << ", work=" << total_work_ << ", sizes=["
     << min_size_ << "," << max_size_ << "], releases=[" << min_release_ << ","
     << max_release_ << "]}";
  return os.str();
}

}  // namespace tempofair
