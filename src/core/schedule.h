// Schedule: the complete record of one simulated run.
//
// A run of the engine produces, per job, its completion time (hence flow
// time), and optionally the full piecewise-constant rate trace: a sequence of
// half-open intervals [begin, end) during which the alive set and all rates
// are constant.  Every analysis in this library -- l_k norms, fairness
// curves, and the paper's dual-fitting construction -- is computed from this
// trace in closed form, without sampling.
//
// The trace lives in a columnar TraceArena (see core/trace_arena.h) and is
// consumed through zero-copy views: TraceIntervalView for interval-major
// scans and JobTraceView for per-job slicing.
#pragma once

#include <initializer_list>
#include <span>
#include <vector>

#include "core/instance.h"
#include "core/time_types.h"
#include "core/trace_arena.h"

namespace tempofair {

class Schedule {
 public:
  Schedule() = default;
  Schedule(const Instance& instance, int machines, double speed);
  /// Streaming construction: sizes the per-job columns for `n` jobs whose
  /// facts arrive later via admit_job (the engine's JobStream path).
  Schedule(std::size_t n, int machines, double speed);

  // --- mutation (used by the engine) ---------------------------------------
  /// Records the release/size/weight of job `id` (streaming runs, where no
  /// Instance exists at construction time).
  void admit_job(JobId id, Time release, Work size, double weight);
  void set_completion(JobId id, Time t);
  /// Appends one trace interval row; `jobs` and `rates` are parallel and
  /// sorted by job id.  Zero-length intervals carry no info and are dropped.
  void push_interval(Time begin, Time end, std::span<const JobId> jobs,
                     std::span<const double> rates);
  /// Appends one uniform-rate row: every job in `jobs` runs at `rate`.
  /// Stores exactly what push_interval would for an all-equal rate vector,
  /// without materializing it.
  void push_interval_uniform(Time begin, Time end, std::span<const JobId> jobs,
                             double rate);
  /// Convenience for hand-built traces (tests).
  void push_interval(Time begin, Time end,
                     std::initializer_list<RateShare> shares);
  /// Releases trace growth slack; the engine calls this after the last row.
  void finalize_trace() { trace_.shrink_to_fit(); }
  void set_trace_recorded(bool recorded) noexcept { has_trace_ = recorded; }

  // --- queries --------------------------------------------------------------
  [[nodiscard]] std::size_t n() const noexcept { return completion_.size(); }
  [[nodiscard]] int machines() const noexcept { return machines_; }
  [[nodiscard]] double speed() const noexcept { return speed_; }

  [[nodiscard]] Time release(JobId id) const { return release_.at(id); }
  [[nodiscard]] Work size(JobId id) const { return size_.at(id); }
  [[nodiscard]] double weight(JobId id) const { return weight_.at(id); }
  /// All job releases, indexed by job id.
  [[nodiscard]] std::span<const Time> releases() const noexcept {
    return release_;
  }
  /// All job weights, indexed by job id.
  [[nodiscard]] std::span<const double> weights() const noexcept {
    return weight_;
  }
  [[nodiscard]] Time completion(JobId id) const { return completion_.at(id); }
  /// All job completions, indexed by job id.
  [[nodiscard]] std::span<const Time> completions() const noexcept {
    return completion_;
  }
  /// Flow (response) time F_j = C_j - r_j.
  [[nodiscard]] Time flow(JobId id) const {
    return completion_.at(id) - release_.at(id);
  }
  /// All flow times, indexed by job id.
  [[nodiscard]] std::vector<Time> flows() const;

  [[nodiscard]] Time makespan() const noexcept { return makespan_; }

  [[nodiscard]] bool has_trace() const noexcept { return has_trace_; }
  /// The columnar trace: iterable over TraceIntervalView, random access by
  /// interval index, and per-job cursors via job_trace().
  [[nodiscard]] const TraceArena& trace() const noexcept { return trace_; }
  /// Cursor over the intervals containing `id` (O(intervals containing id)).
  [[nodiscard]] JobTraceView job_trace(JobId id) const {
    return trace_.job_trace(id);
  }
  /// Bytes held by the trace columns right now (capacity-based).
  [[nodiscard]] std::size_t trace_memory_bytes() const noexcept {
    return trace_.memory_bytes();
  }

  /// Total work processed according to the trace (for conservation checks).
  [[nodiscard]] Work traced_work() const;
  /// Work processed for one job according to the trace; O(intervals
  /// containing id) via the arena's per-job index.
  [[nodiscard]] Work traced_work(JobId id) const;

  /// Validates internal consistency: completions present and >= release +
  /// size/speed-share lower bound, traced work equals sizes (if traced),
  /// interval rates within machine capacity.  Throws std::logic_error with a
  /// description on the first violation.
  void validate() const;

 private:
  std::vector<Time> release_;
  std::vector<Work> size_;
  std::vector<double> weight_;
  std::vector<Time> completion_;
  TraceArena trace_;
  Time makespan_ = 0.0;
  int machines_ = 1;
  double speed_ = 1.0;
  bool has_trace_ = false;
};

}  // namespace tempofair
