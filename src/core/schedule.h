// Schedule: the complete record of one simulated run.
//
// A run of the engine produces, per job, its completion time (hence flow
// time), and optionally the full piecewise-constant rate trace: a sequence of
// half-open intervals [begin, end) during which the alive set and all rates
// are constant.  Every analysis in this library -- l_k norms, fairness
// curves, and the paper's dual-fitting construction -- is computed from this
// trace in closed form, without sampling.
#pragma once

#include <span>
#include <vector>

#include "core/instance.h"
#include "core/time_types.h"

namespace tempofair {

/// One job's share of the machines during a trace interval.
struct RateShare {
  JobId job = kInvalidJob;
  /// Processing rate in work units per time unit; for a policy running at
  /// speed s on m machines this lies in [0, s] and rates sum to <= s*m.
  double rate = 0.0;
};

/// Maximal interval during which the alive set and all rates are constant.
/// `shares` lists *every* alive job (rate may be 0), sorted by job id.
struct TraceInterval {
  Time begin = 0.0;
  Time end = 0.0;
  std::vector<RateShare> shares;

  [[nodiscard]] Time length() const noexcept { return end - begin; }
  [[nodiscard]] std::size_t alive_count() const noexcept {
    return shares.size();
  }
};

class Schedule {
 public:
  Schedule() = default;
  Schedule(const Instance& instance, int machines, double speed);

  // --- mutation (used by the engine) ---------------------------------------
  void set_completion(JobId id, Time t);
  void push_interval(TraceInterval iv);
  void set_trace_recorded(bool recorded) noexcept { has_trace_ = recorded; }

  // --- queries --------------------------------------------------------------
  [[nodiscard]] std::size_t n() const noexcept { return completion_.size(); }
  [[nodiscard]] int machines() const noexcept { return machines_; }
  [[nodiscard]] double speed() const noexcept { return speed_; }

  [[nodiscard]] Time release(JobId id) const { return release_.at(id); }
  [[nodiscard]] Work size(JobId id) const { return size_.at(id); }
  [[nodiscard]] double weight(JobId id) const { return weight_.at(id); }
  /// All job weights, indexed by job id.
  [[nodiscard]] std::span<const double> weights() const noexcept {
    return weight_;
  }
  [[nodiscard]] Time completion(JobId id) const { return completion_.at(id); }
  /// Flow (response) time F_j = C_j - r_j.
  [[nodiscard]] Time flow(JobId id) const {
    return completion_.at(id) - release_.at(id);
  }
  /// All flow times, indexed by job id.
  [[nodiscard]] std::vector<Time> flows() const;

  [[nodiscard]] Time makespan() const noexcept { return makespan_; }

  [[nodiscard]] bool has_trace() const noexcept { return has_trace_; }
  [[nodiscard]] std::span<const TraceInterval> trace() const noexcept {
    return trace_;
  }

  /// Total work processed according to the trace (for conservation checks).
  [[nodiscard]] Work traced_work() const;
  /// Work processed for one job according to the trace.
  [[nodiscard]] Work traced_work(JobId id) const;

  /// Validates internal consistency: completions present and >= release +
  /// size/speed-share lower bound, traced work equals sizes (if traced),
  /// interval rates within machine capacity.  Throws std::logic_error with a
  /// description on the first violation.
  void validate() const;

 private:
  std::vector<Time> release_;
  std::vector<Work> size_;
  std::vector<double> weight_;
  std::vector<Time> completion_;
  std::vector<TraceInterval> trace_;
  Time makespan_ = 0.0;
  int machines_ = 1;
  double speed_ = 1.0;
  bool has_trace_ = false;
};

}  // namespace tempofair
