// Instantaneous-fairness metrics computed from a schedule's rate trace.
//
// The paper distinguishes *instantaneous* fairness -- resources split evenly
// among alive jobs at every moment, which Round Robin achieves by definition
// -- from *temporal* fairness, captured by the l_k norm of flow time.  These
// metrics quantify the former so experiments F2/F3 can show the trade-off.
//
// All quantities are exact time-integrals over the piecewise-constant trace.
#pragma once

#include <vector>

#include "core/schedule.h"

namespace tempofair {

struct FairnessReport {
  /// Time-average (over busy time, weighted by interval length) of Jain's
  /// fairness index J = (sum r_i)^2 / (n * sum r_i^2) over alive jobs'
  /// rates.  1.0 = perfectly equal shares (RR); 1/n = one job hogs all.
  double jain_time_avg = 1.0;
  /// Minimum Jain index over all intervals with >= 2 alive jobs.
  double jain_min = 1.0;
  /// Time-average of min_j rate_j / fair_share, where fair_share =
  /// speed * min(1, m / n_t): how close the worst-treated job is to its
  /// Round-Robin entitlement.  1.0 for RR.
  double min_share_time_avg = 1.0;
  /// Worst (largest) service lag over all jobs and times: the maximum of
  /// fair-share-accumulated service minus actually attained service.  0 for
  /// RR; large when some job starves while others run.
  double max_service_lag = 0.0;
  /// Fraction of busy time during which at least one alive job receives
  /// exactly zero rate ("some job is starved right now").
  double starved_time_fraction = 0.0;
  /// Total busy (traced) time.
  double busy_time = 0.0;
};

/// Computes the fairness report from a schedule with a recorded trace.
/// Throws std::invalid_argument if the schedule has no trace.
[[nodiscard]] FairnessReport fairness_report(const Schedule& schedule);

/// Jain index of a single rate vector (utility for tests / custom analyses).
[[nodiscard]] double jain_index(std::span<const double> rates);

/// Piecewise-constant curve of the number of alive jobs over time,
/// as (time, n_alive) breakpoints: n_alive holds from this time to the next.
[[nodiscard]] std::vector<std::pair<Time, std::size_t>> alive_count_curve(
    const Schedule& schedule);

/// One job's service-lag curve: samples (t, lag(t)) at the boundaries of the
/// trace intervals the job is alive in, where lag is the running integral of
/// fair share (speed * min(1, m / n_t)) minus the job's actual rate.  Always
/// ~0 for RR; grows while the job is starved under size-based policies.
/// Costs O(intervals containing the job) via the trace arena's per-job
/// cursor.  Throws std::invalid_argument if the schedule has no trace.
[[nodiscard]] std::vector<std::pair<Time, double>> service_lag_curve(
    const Schedule& schedule, JobId job);

}  // namespace tempofair
