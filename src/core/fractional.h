// Fractional flow time, computed exactly from the piecewise-constant trace.
//
// The fractional flow of job j is  int_{r_j}^{C_j} (remaining_j(t) / p_j) dt
// -- the flow-time mass weighted by how much of the job is still unfinished.
// It lower-bounds the integral flow F_j and is the natural objective of the
// LP relaxation of Section 3.1 (the LP "pays" for each unit of work by the
// age at which it is processed).  The generalized k-th power version is
//
//   fractional F_j^k  =  int_{r_j}^{C_j} k (t - r_j)^{k-1} remaining_j(t)/p_j dt,
//
// which coincides with the k = 1 case above and relates the simulator's
// schedules to the LP lower bounds: for any schedule,
// fractional cost <= integral cost, and the LP optimum lower-bounds the
// *fractional* cost of every feasible schedule directly.
#pragma once

#include <vector>

#include "core/schedule.h"

namespace tempofair {

struct FractionalFlowResult {
  /// Per-job fractional k-th-power flow, indexed by job id.
  std::vector<double> per_job;
  /// Sum over jobs.
  double total = 0.0;
};

/// Exact fractional k-th-power flows (k >= 1) from a traced schedule.
/// Throws std::invalid_argument if the schedule has no trace or k < 1.
[[nodiscard]] FractionalFlowResult fractional_flow_power(
    const Schedule& schedule, double k = 1.0);

}  // namespace tempofair
