#include "core/invariants.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "core/schedule.h"
#include "obs/obs.h"

namespace tempofair {

namespace {

/// The engine's rate tolerance (engine.cpp uses the same formula); every
/// per-epoch rate comparison below is made against it so a schedule the
/// engine accepts never trips a checker.
[[nodiscard]] double rate_tolerance(const InvariantRunProfile& p) noexcept {
  return 1e-7 * std::max(1.0, p.speed * static_cast<double>(p.machines));
}

// --- built-in checkers ------------------------------------------------------

/// rate in [0, speed]: per-job machine shares m_j(t) in [0,1] scaled by s
/// (the paper's feasibility condition, per job).
class RateBoundsCheck final : public InvariantCheck {
 public:
  explicit RateBoundsCheck(const InvariantRunProfile& p)
      : speed_(p.speed), tol_(rate_tolerance(p)) {}
  [[nodiscard]] std::string_view name() const noexcept override {
    return "rate_bounds";
  }
  void on_epoch(const InvariantEpoch& e) override {
    if (e.uniform) {
      check_one(e, e.uniform_rate, e.n() > 0 ? e.jobs[0] : kInvalidJob);
      return;
    }
    for (std::size_t i = 0; i < e.n(); ++i) check_one(e, e.rates[i], e.jobs[i]);
  }

 private:
  void check_one(const InvariantEpoch& e, double r, JobId job) {
    if (!std::isfinite(r) || r < -tol_) {
      report("rate " + std::to_string(r) + " is negative or non-finite",
             e.begin, job);
    } else if (r > speed_ + tol_) {
      report("rate " + std::to_string(r) + " exceeds per-machine speed " +
                 std::to_string(speed_),
             e.begin, job);
    }
  }
  double speed_;
  double tol_;
};

/// sum of rates <= s*m (the paper's aggregate feasibility condition).
class CapacityCheck final : public InvariantCheck {
 public:
  explicit CapacityCheck(const InvariantRunProfile& p)
      : cap_(p.speed * static_cast<double>(p.machines)),
        tol_(rate_tolerance(p)) {}
  [[nodiscard]] std::string_view name() const noexcept override {
    return "capacity";
  }
  void on_epoch(const InvariantEpoch& e) override {
    double sum = 0.0;
    if (e.uniform) {
      sum = e.uniform_rate * static_cast<double>(e.n());
    } else {
      for (const double r : e.rates) sum += r;
    }
    if (sum > cap_ + tol_) {
      report("rates sum " + std::to_string(sum) + " exceeds capacity " +
                 std::to_string(cap_),
             e.begin);
    }
  }

 private:
  double cap_;
  double tol_;
};

/// sum of rates >= s*min(n, m) while jobs are alive; gated on the policy's
/// work_conserving trait (LAPS and costly-switch quantum-RR idle by design).
class WorkConservationCheck final : public InvariantCheck {
 public:
  explicit WorkConservationCheck(const InvariantRunProfile& p)
      : machines_(p.machines), speed_(p.speed), tol_(rate_tolerance(p)) {}
  [[nodiscard]] std::string_view name() const noexcept override {
    return "work_conservation";
  }
  void on_epoch(const InvariantEpoch& e) override {
    if (e.n() == 0) return;
    double sum = 0.0;
    if (e.uniform) {
      sum = e.uniform_rate * static_cast<double>(e.n());
    } else {
      for (const double r : e.rates) sum += r;
    }
    const double expected =
        speed_ * static_cast<double>(
                     std::min(e.n(), static_cast<std::size_t>(machines_)));
    if (sum < expected - tol_) {
      report("rates sum " + std::to_string(sum) + " idles capacity (expected " +
                 std::to_string(expected) + " with " + std::to_string(e.n()) +
                 " alive)",
             e.begin);
    }
  }

 private:
  int machines_;
  double speed_;
  double tol_;
};

/// Remaining work stays in [0, size] and cannot go negative within the
/// epoch: service never exceeds what was requested, and the engine must
/// have completed a job before over-advancing it.  Needs the caller to
/// supply the remaining column (the uniform fast path supplies remaining
/// but not sizes; the size-bound half is skipped there and covered by the
/// offline exhaustive replay).
class MonotoneRemainingCheck final : public InvariantCheck {
 public:
  explicit MonotoneRemainingCheck(const InvariantRunProfile&) {}
  [[nodiscard]] std::string_view name() const noexcept override {
    return "monotone_remaining";
  }
  void on_epoch(const InvariantEpoch& e) override {
    if (e.remaining.empty()) return;
    const bool have_sizes = !e.sizes.empty();
    const Time len = e.length();
    if (e.uniform && !have_sizes && e.remaining_sorted_descending) {
      // Descending order + one shared rate: the minimum element decides all
      // three bounds, so the battery costs O(1) on the RR fast path.
      check_one(e, e.n() - 1, have_sizes, len);
      return;
    }
    for (std::size_t i = 0; i < e.n(); ++i) {
      check_one(e, i, have_sizes, len);
    }
  }

 private:
  void check_one(const InvariantEpoch& e, std::size_t i, bool have_sizes,
                 Time len) {
    const Work rem = e.remaining[i];
    const double ref = have_sizes ? e.sizes[i] : std::fabs(rem);
    const Work tol = 4.0 * (kRelEps * ref + kAbsEps);
    // The served-work bound subtracts rate * (end - begin); at late epochs
    // the interval bounds dominate the rounding error (one ulp of `end`
    // scales with the absolute clock, not with the epoch length), so the
    // tolerance needs a time-magnitude term.
    const Work served_tol =
        tol + 16.0 * std::numeric_limits<double>::epsilon() *
                  std::fabs(e.end) * std::max(1.0, e.rate(i));
    if (rem < -tol) {
      report("remaining " + std::to_string(rem) +
                 " negative at epoch start (job served past completion)",
             e.begin, e.jobs[i]);
    } else if (have_sizes && rem > e.sizes[i] + tol) {
      report("remaining " + std::to_string(rem) + " exceeds size " +
                 std::to_string(e.sizes[i]),
             e.begin, e.jobs[i]);
    } else if (rem - e.rate(i) * len < -served_tol) {
      report("job over-served: remaining " + std::to_string(rem) + " minus " +
                 std::to_string(e.rate(i) * len) +
                 " served this epoch goes negative",
             e.begin, e.jobs[i]);
    }
  }
};

/// Completion times exist, respect releases, and are not faster than a
/// dedicated machine at speed s allows; with a complete traced-work
/// accounting, flags jobs marked complete that never received their size
/// (lost work).
class CompletionConsistencyCheck final : public InvariantCheck {
 public:
  explicit CompletionConsistencyCheck(const InvariantRunProfile& p)
      : speed_(p.speed) {}
  [[nodiscard]] std::string_view name() const noexcept override {
    return "completion_consistency";
  }
  void on_epoch(const InvariantEpoch&) override {}
  void finalize(const InvariantFinalizeContext& ctx) override {
    if (ctx.schedule == nullptr) return;
    const Schedule& s = *ctx.schedule;
    for (JobId id = 0; id < static_cast<JobId>(s.n()); ++id) {
      const Time c = s.completion(id);
      const Time release = s.release(id);
      const Work size = s.size(id);
      if (!std::isfinite(c)) {
        report("job never completed", release, id);
        continue;
      }
      const Time earliest = release + size / speed_;
      const Time slack = 2.0 * (kRelEps * size + kAbsEps) / speed_ +
                         kRelEps * std::fabs(earliest) + kAbsEps;
      if (c < release - slack) {
        report("completion " + std::to_string(c) + " precedes release " +
                   std::to_string(release),
               c, id);
      } else if (c + slack < earliest) {
        report("completion " + std::to_string(c) +
                   " beats the dedicated-machine bound " +
                   std::to_string(earliest),
               c, id);
      }
      if (ctx.trace_complete && id < ctx.traced_done.size()) {
        const Work done = ctx.traced_done[id];
        if (done + 1e-6 * size + 1e-9 < size) {
          report("lost work: trace shows " + std::to_string(done) +
                     " of size " + std::to_string(size),
                 c, id);
        }
      }
    }
  }

 private:
  double speed_;
};

/// Every alive job makes progress in every epoch -- the no-starvation
/// witness the RR family advertises via the shares_all_alive trait.
class NoStarvationCheck final : public InvariantCheck {
 public:
  explicit NoStarvationCheck(const InvariantRunProfile&) {}
  [[nodiscard]] std::string_view name() const noexcept override {
    return "no_starvation";
  }
  void on_epoch(const InvariantEpoch& e) override {
    if (e.uniform) {
      if (e.n() > 0 && !(e.uniform_rate > 0.0)) {
        report("alive jobs receive zero rate", e.begin,
               e.n() > 0 ? e.jobs[0] : kInvalidJob);
      }
      return;
    }
    for (std::size_t i = 0; i < e.n(); ++i) {
      if (!(e.rates[i] > 0.0)) {
        report("alive job starved (rate " + std::to_string(e.rates[i]) + ")",
               e.begin, e.jobs[i]);
      }
    }
  }
};

/// All alive jobs receive the equal share s*min(1, m/n) -- plain RR's
/// temporal-fairness witness (equal_share trait).
class TemporalFairnessCheck final : public InvariantCheck {
 public:
  explicit TemporalFairnessCheck(const InvariantRunProfile& p)
      : machines_(p.machines), speed_(p.speed), tol_(rate_tolerance(p)) {}
  [[nodiscard]] std::string_view name() const noexcept override {
    return "temporal_fairness";
  }
  void on_epoch(const InvariantEpoch& e) override {
    if (e.n() == 0) return;
    const double expected =
        speed_ * std::min(1.0, static_cast<double>(machines_) /
                                   static_cast<double>(e.n()));
    if (e.uniform) {
      check_one(e, e.uniform_rate, expected, e.jobs[0]);
      return;
    }
    for (std::size_t i = 0; i < e.n(); ++i) {
      check_one(e, e.rates[i], expected, e.jobs[i]);
    }
  }

 private:
  void check_one(const InvariantEpoch& e, double r, double expected,
                 JobId job) {
    if (std::fabs(r - expected) > tol_) {
      report("rate " + std::to_string(r) + " deviates from the equal share " +
                 std::to_string(expected) + " (" + std::to_string(e.n()) +
                 " alive)",
             e.begin, job);
    }
  }
  int machines_;
  double speed_;
  double tol_;
};

/// attained + remaining == size for every alive job -- the accounting
/// witness of the attained-dependent fast-forward kernels (SETF / MLFQ).
/// Both the generic loop and FastForwardCore expose their attained column
/// when they track one; epochs without the column are skipped (the witness
/// is then covered by monotone_remaining plus completion_consistency).
/// The tolerance is generous (1e-6 relative) because attained accumulates
/// one rounding error per epoch over the whole run.
class AttainedAccountingCheck final : public InvariantCheck {
 public:
  explicit AttainedAccountingCheck(const InvariantRunProfile&) {}
  [[nodiscard]] std::string_view name() const noexcept override {
    return "attained_accounting";
  }
  void on_epoch(const InvariantEpoch& e) override {
    if (e.attained.empty() || e.remaining.empty() || e.sizes.empty()) return;
    for (std::size_t i = 0; i < e.n(); ++i) {
      const Work att = e.attained[i];
      const Work size = e.sizes[i];
      const Work tol = 1e-6 * std::max(1.0, size) + 1e-9;
      if (att < -tol) {
        report("attained service " + std::to_string(att) + " is negative",
               e.begin, e.jobs[i]);
      } else if (std::fabs(att + e.remaining[i] - size) > tol) {
        report("attained " + std::to_string(att) + " + remaining " +
                   std::to_string(e.remaining[i]) + " drifts from size " +
                   std::to_string(size),
               e.begin, e.jobs[i]);
      }
    }
  }
};

}  // namespace

// --- modes and defaults -----------------------------------------------------

std::string_view to_string(InvariantMode mode) noexcept {
  switch (mode) {
    case InvariantMode::kOff:
      return "off";
    case InvariantMode::kSampled:
      return "sampled";
    case InvariantMode::kExhaustive:
      return "exhaustive";
  }
  return "off";
}

InvariantMode parse_invariant_mode(std::string_view text) {
  if (text == "off") return InvariantMode::kOff;
  if (text == "sampled") return InvariantMode::kSampled;
  if (text == "exhaustive") return InvariantMode::kExhaustive;
  throw std::invalid_argument(
      "invariants: unknown mode '" + std::string(text) +
      "' (expected off, sampled, or exhaustive)");
}

namespace {

struct InvariantDefaults {
  InvariantMode mode = InvariantMode::kSampled;
  std::size_t period = 256;
};

const InvariantDefaults& process_defaults() {
  static const InvariantDefaults defaults = [] {
    InvariantDefaults d;
    const char* env = std::getenv("TEMPOFAIR_INVARIANTS");
    if (env == nullptr || *env == '\0') return d;
    std::string_view text(env);
    std::string_view mode_text = text;
    const std::size_t colon = text.find(':');
    if (colon != std::string_view::npos) mode_text = text.substr(0, colon);
    try {
      d.mode = parse_invariant_mode(mode_text);
      if (colon != std::string_view::npos) {
        const long period = std::stol(std::string(text.substr(colon + 1)));
        if (period < 1) throw std::invalid_argument("period must be >= 1");
        d.period = static_cast<std::size_t>(period);
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr,
                   "tempofair: ignoring TEMPOFAIR_INVARIANTS='%s' (%s); "
                   "using sampled:256\n",
                   env, e.what());
      d = InvariantDefaults{};
    }
    return d;
  }();
  return defaults;
}

}  // namespace

InvariantMode default_invariant_mode() { return process_defaults().mode; }

std::size_t default_invariant_sample_period() {
  return process_defaults().period;
}

std::string summarize(const InvariantStats& stats) {
  if (stats.ok()) {
    return "ok (" + std::to_string(stats.epochs_checked) + " of " +
           std::to_string(stats.epochs_seen) + " epochs checked, mode " +
           std::string(to_string(stats.mode)) + ")";
  }
  std::string out = std::to_string(stats.violations) + " violation(s) in " +
                    std::to_string(stats.epochs_checked) + " checked epoch(s)";
  if (!stats.reports.empty()) {
    const InvariantViolation& v = stats.reports.front();
    out += "; first: [" + v.check + "] " + v.detail + " at t=" +
           std::to_string(v.time);
    if (v.job != kInvalidJob) out += " job=" + std::to_string(v.job);
  }
  return out;
}

void throw_if_violated(const InvariantStats& stats,
                       std::string_view policy_name) {
  if (stats.ok()) return;
  throw std::runtime_error("tempofair::invariants: policy " +
                           std::string(policy_name) + ": " + summarize(stats));
}

// --- registry ---------------------------------------------------------------

struct InvariantRegistry::Impl {
  mutable std::mutex mutex;
  std::vector<std::pair<std::string, InvariantCheckFactory>> entries;
};

InvariantRegistry::InvariantRegistry() : impl_(std::make_unique<Impl>()) {
  auto always = [](auto maker) {
    return [maker](const InvariantRunProfile& p)
               -> std::unique_ptr<InvariantCheck> { return maker(p); };
  };
  impl_->entries.emplace_back(
      "rate_bounds", always([](const InvariantRunProfile& p) {
        return std::make_unique<RateBoundsCheck>(p);
      }));
  impl_->entries.emplace_back(
      "capacity", always([](const InvariantRunProfile& p) {
        return std::make_unique<CapacityCheck>(p);
      }));
  impl_->entries.emplace_back(
      "work_conservation",
      [](const InvariantRunProfile& p) -> std::unique_ptr<InvariantCheck> {
        if (!p.traits.work_conserving) return nullptr;
        return std::make_unique<WorkConservationCheck>(p);
      });
  impl_->entries.emplace_back(
      "monotone_remaining", always([](const InvariantRunProfile& p) {
        return std::make_unique<MonotoneRemainingCheck>(p);
      }));
  impl_->entries.emplace_back(
      "completion_consistency", always([](const InvariantRunProfile& p) {
        return std::make_unique<CompletionConsistencyCheck>(p);
      }));
  impl_->entries.emplace_back(
      "no_starvation",
      [](const InvariantRunProfile& p) -> std::unique_ptr<InvariantCheck> {
        if (!p.traits.shares_all_alive) return nullptr;
        return std::make_unique<NoStarvationCheck>(p);
      });
  impl_->entries.emplace_back(
      "attained_accounting", always([](const InvariantRunProfile& p) {
        return std::make_unique<AttainedAccountingCheck>(p);
      }));
  impl_->entries.emplace_back(
      "temporal_fairness",
      [](const InvariantRunProfile& p) -> std::unique_ptr<InvariantCheck> {
        if (!p.traits.equal_share) return nullptr;
        return std::make_unique<TemporalFairnessCheck>(p);
      });
}

InvariantRegistry& InvariantRegistry::instance() {
  static InvariantRegistry registry;
  return registry;
}

void InvariantRegistry::add(std::string name, InvariantCheckFactory factory) {
  const std::lock_guard lock(impl_->mutex);
  impl_->entries.emplace_back(std::move(name), std::move(factory));
}

std::vector<std::unique_ptr<InvariantCheck>> InvariantRegistry::build(
    const InvariantRunProfile& profile) const {
  const std::lock_guard lock(impl_->mutex);
  std::vector<std::unique_ptr<InvariantCheck>> checks;
  checks.reserve(impl_->entries.size());
  for (const auto& [name, factory] : impl_->entries) {
    if (auto check = factory(profile)) checks.push_back(std::move(check));
  }
  return checks;
}

std::vector<std::string> InvariantRegistry::names() const {
  const std::lock_guard lock(impl_->mutex);
  std::vector<std::string> names;
  names.reserve(impl_->entries.size());
  for (const auto& [name, factory] : impl_->entries) names.push_back(name);
  return names;
}

// --- the per-run harness ----------------------------------------------------

void InvariantCheck::report(std::string detail, Time time, JobId job) {
  if (set_ != nullptr) set_->record(name(), std::move(detail), time, job);
}

void InvariantSet::record(std::string_view check, std::string detail,
                          Time time, JobId job) {
  ++stats_.violations;
  if (stats_.reports.size() < kMaxInvariantReports) {
    stats_.reports.push_back(InvariantViolation{
        std::string(check), std::move(detail), time, job});
  }
}

void InvariantSet::begin_run(const InvariantRunProfile& profile,
                             InvariantMode mode, std::size_t sample_period,
                             const Schedule* schedule) {
  stats_ = InvariantStats{};
  stats_.mode = mode;
  mode_ = mode;
  period_ = std::max<std::size_t>(1, sample_period);
  countdown_ = period_;
  schedule_ = schedule;
  checks_.clear();
  if (mode == InvariantMode::kOff) return;
  checks_ = InvariantRegistry::instance().build(profile);
  for (const auto& check : checks_) check->set_ = this;
}

void InvariantSet::check_epoch(const InvariantEpoch& epoch) {
  ++stats_.epochs_checked;
  for (const auto& check : checks_) {
    ++stats_.checks_run;
    check->on_epoch(epoch);
  }
}

void InvariantSet::finish(std::span<const Work> traced_done) {
  if (checks_.empty()) return;
  InvariantFinalizeContext ctx;
  ctx.schedule = schedule_;
  ctx.traced_done = traced_done;
  ctx.trace_complete = !traced_done.empty();
  for (const auto& check : checks_) {
    ++stats_.checks_run;
    check->finalize(ctx);
  }
  obs::add(obs_counters::kInvariantRuns, 1);
  obs::add(obs_counters::kInvariantEpochsChecked, stats_.epochs_checked);
  if (stats_.violations > 0) {
    obs::add(obs_counters::kInvariantViolations, stats_.violations);
  }
}

// --- offline battery --------------------------------------------------------

InvariantStats check_schedule(const Schedule& schedule,
                              const InvariantRunProfile& profile) {
  InvariantSet set;
  set.begin_run(profile, InvariantMode::kExhaustive, 1, &schedule);
  std::vector<Work> done(schedule.n(), 0.0);
  if (schedule.has_trace()) {
    std::vector<Work> rem;
    std::vector<Work> sizes;
    std::vector<double> rates;
    for (const TraceIntervalView iv : schedule.trace()) {
      const std::span<const JobId> jobs = iv.jobs();
      const std::size_t n = jobs.size();
      rem.resize(n);
      sizes.resize(n);
      rates.resize(n);
      for (std::size_t i = 0; i < n; ++i) {
        const JobId id = jobs[i];
        sizes[i] = schedule.size(id);
        rem[i] = sizes[i] - done[id];
        rates[i] = iv.rate(i);
      }
      if (set.epoch_due()) {
        InvariantEpoch epoch;
        epoch.begin = iv.begin();
        epoch.end = iv.end();
        epoch.jobs = jobs;
        epoch.rates = rates;
        epoch.remaining = rem;
        epoch.sizes = sizes;
        set.check_epoch(epoch);
      }
      const Time len = iv.length();
      for (std::size_t i = 0; i < n; ++i) done[jobs[i]] += rates[i] * len;
    }
  }
  set.finish(schedule.has_trace() ? std::span<const Work>(done)
                                  : std::span<const Work>{});
  return set.take_stats();
}

}  // namespace tempofair
