// Closed-form share rules, shared verbatim between the policies and
// FastForwardCore (contract C1 in core/fast_forward.h).
//
// SETF, LAPS, and MLFQ allocate rates by a pure function of the alive jobs'
// (attained, release) columns and the run constants -- no state survives
// between queries.  To make the fast path bitwise-equal to the event loop,
// the one rule body lives here as a template over column accessors: the
// policy's rates() instantiates it over the id-sorted AliveJob views, the
// kernel over its id-sorted SoA columns, and both therefore execute the
// exact same floating-point operations in the same order.  Tie-breaks by
// job id reduce to index comparisons because both callers index in
// ascending-id order.
//
// Editing a formula here changes both paths at once -- which is the point.
// Never fork a copy into a policy or the kernel.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <numeric>
#include <vector>

#include "core/time_types.h"

namespace tempofair::share_rules {

/// Reusable scratch for setf_rates; callers keep one across queries so the
/// per-event cost is a sort, never an allocation.
struct SetfScratch {
  struct Group {
    double rate;
    double level;
  };
  std::vector<std::size_t> idx;
  std::vector<Group> groups;
};

/// Fluid SETF (policies/setf.h): machines are granted to jobs in increasing
/// attained-service order; a group tied at one level (within `tol`) shares
/// what remains, and the breakpoint is the earliest catch-up time at which
/// two adjacent groups merge.  `attained(i)` reads job i's attained service;
/// i ranges over the id-sorted alive set.  Fills `rates` (id order) and
/// returns the RateDecision::max_duration breakpoint.
template <typename AttainedAt>
[[nodiscard]] Time setf_rates(std::size_t n, int machines, double speed,
                              double tol, const AttainedAt& attained,
                              std::vector<double>& rates,
                              SetfScratch& scratch) {
  auto& idx = scratch.idx;
  idx.resize(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    if (attained(a) != attained(b)) return attained(a) < attained(b);
    return a < b;
  });

  rates.assign(n, 0.0);

  // Walk groups of (approximately) equal attained service, granting machines.
  double machines_left = static_cast<double>(machines);
  std::size_t i = 0;
  auto& groups = scratch.groups;
  groups.clear();
  // Groups are built by chaining: job j joins the current group when its
  // attained service is within tolerance of its predecessor's.  (Comparing to
  // the group head instead would split groups spuriously right after two
  // groups merge, forcing the engine into tiny catch-up steps.)
  auto group_end = [&](std::size_t start) {
    std::size_t j = start + 1;
    while (j < n &&
           approx_equal(attained(idx[j]), attained(idx[j - 1]), tol, tol)) {
      ++j;
    }
    return j;
  };

  while (i < n && machines_left > 0.0) {
    const double level = attained(idx[i]);
    const std::size_t j = group_end(i);
    const double group_size = static_cast<double>(j - i);
    const double per_job = speed * std::min(1.0, machines_left / group_size);
    for (std::size_t g = i; g < j; ++g) rates[idx[g]] = per_job;
    machines_left -= (per_job / speed) * group_size;
    groups.push_back(SetfScratch::Group{per_job, level});
    i = j;
  }
  // Remaining groups (if any) get zero rate but we still need their levels
  // for the catch-up breakpoint.
  while (i < n) {
    const double level = attained(idx[i]);
    groups.push_back(SetfScratch::Group{0.0, level});
    i = group_end(i);
  }

  // Breakpoint: the earliest time a faster lower group catches the level of
  // the group above it (their rates then change as the groups merge).
  Time breakpoint = kInfiniteTime;
  for (std::size_t g = 0; g + 1 < groups.size(); ++g) {
    const double closing = groups[g].rate - groups[g + 1].rate;
    if (closing > kAbsEps) {
      const double gap = groups[g + 1].level - groups[g].level;
      breakpoint = std::min(breakpoint, std::max(gap, 0.0) / closing);
    }
  }
  if (breakpoint <= 0.0) breakpoint = kAbsEps;  // merged this instant; take a tiny step
  return breakpoint;
}

/// LAPS(beta) (policies/priority_policies.h): the ceil(beta*n)
/// latest-arriving jobs split the machines equally, capped at one machine
/// each.  `release(i)` reads job i's release time over the id-sorted alive
/// set.  Fills `rates` (id order); LAPS is event-driven only, so there is
/// no breakpoint to return.
template <typename ReleaseAt>
void laps_rates(std::size_t n, int machines, double speed, double beta,
                const ReleaseAt& release, std::vector<double>& rates,
                std::vector<std::size_t>& idx) {
  const std::size_t share_count = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(beta * static_cast<double>(n))));

  idx.resize(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::partial_sort(idx.begin(),
                    idx.begin() + static_cast<std::ptrdiff_t>(share_count),
                    idx.end(), [&](std::size_t a, std::size_t b) {
                      if (release(a) != release(b)) {
                        return release(a) > release(b);
                      }
                      return a > b;
                    });

  const double rate =
      speed * std::min(1.0, static_cast<double>(machines) /
                                static_cast<double>(share_count));
  rates.assign(n, 0.0);
  for (std::size_t i = 0; i < share_count; ++i) rates[idx[i]] = rate;
}

/// MLFQ level threshold T_level = base * growth^level (policies/mlfq.h).
[[nodiscard]] inline double mlfq_threshold(double base, double growth,
                                           int level) noexcept {
  return base * std::pow(growth, level);
}

/// Level of a job with attained service `attained`: the number of
/// thresholds it has passed.
[[nodiscard]] inline int mlfq_level_of(double base, double growth,
                                       double attained) noexcept {
  if (attained < base) return 0;
  // Smallest L with attained < base * growth^L.
  const int lvl =
      static_cast<int>(std::floor(std::log(attained / base) /
                                  std::log(growth))) + 1;
  // Guard against log rounding at exact threshold values.
  int l = std::max(lvl - 1, 0);
  while (attained >= mlfq_threshold(base, growth, l)) ++l;
  return l;
}

/// Reusable scratch for mlfq_rates.
struct MlfqScratch {
  std::vector<int> levels;
  std::vector<std::size_t> idx;
};

/// MLFQ (policies/mlfq.h): the m alive jobs of lexicographically least
/// (level, release, id) run at full speed; the breakpoint fires when a
/// running job crosses into the next level.  Fills `rates` (id order) and
/// returns the breakpoint.
template <typename AttainedAt, typename ReleaseAt>
[[nodiscard]] Time mlfq_rates(std::size_t n, int machines, double speed,
                              double base, double growth,
                              const AttainedAt& attained,
                              const ReleaseAt& release,
                              std::vector<double>& rates,
                              MlfqScratch& scratch) {
  auto& levels = scratch.levels;
  levels.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    levels[i] = mlfq_level_of(base, growth, attained(i));
  }

  auto& idx = scratch.idx;
  idx.resize(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  const std::size_t run =
      std::min<std::size_t>(n, static_cast<std::size_t>(machines));
  std::partial_sort(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(run),
                    idx.end(), [&](std::size_t a, std::size_t b) {
                      if (levels[a] != levels[b]) return levels[a] < levels[b];
                      if (release(a) != release(b)) {
                        return release(a) < release(b);
                      }
                      return a < b;
                    });

  rates.assign(n, 0.0);
  Time breakpoint = kInfiniteTime;
  for (std::size_t i = 0; i < run; ++i) {
    const std::size_t a = idx[i];
    rates[a] = speed;
    // Re-query when this job crosses into the next level (it may then be
    // preempted by a lower-level waiter).
    const double to_demotion =
        mlfq_threshold(base, growth, levels[a]) - attained(a);
    if (to_demotion > 0.0) {
      breakpoint = std::min(breakpoint, to_demotion / speed);
    }
  }
  if (breakpoint <= 0.0) breakpoint = kAbsEps;
  return breakpoint;
}

}  // namespace tempofair::share_rules
