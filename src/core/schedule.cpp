#include "core/schedule.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace tempofair {

Schedule::Schedule(const Instance& instance, int machines, double speed)
    : machines_(machines), speed_(speed) {
  const std::size_t n = instance.n();
  release_.resize(n);
  size_.resize(n);
  weight_.resize(n);
  completion_.assign(n, kInfiniteTime);
  for (const Job& j : instance.jobs()) {
    release_[j.id] = j.release;
    size_[j.id] = j.size;
    weight_[j.id] = j.weight;
  }
}

Schedule::Schedule(std::size_t n, int machines, double speed)
    : machines_(machines), speed_(speed) {
  release_.resize(n);
  size_.resize(n);
  weight_.resize(n);
  completion_.assign(n, kInfiniteTime);
}

void Schedule::admit_job(JobId id, Time release, Work size, double weight) {
  release_.at(id) = release;
  size_.at(id) = size;
  weight_.at(id) = weight;
}

void Schedule::set_completion(JobId id, Time t) {
  completion_.at(id) = t;
  makespan_ = std::max(makespan_, t);
}

void Schedule::push_interval(Time begin, Time end,
                             std::span<const JobId> jobs,
                             std::span<const double> rates) {
  if (!(end > begin)) return;  // zero-length intervals carry no info
  trace_.append(begin, end, jobs, rates);
}

void Schedule::push_interval(Time begin, Time end,
                             std::initializer_list<RateShare> shares) {
  if (!(end > begin)) return;
  trace_.append(begin, end, shares);
}

void Schedule::push_interval_uniform(Time begin, Time end,
                                     std::span<const JobId> jobs,
                                     double rate) {
  if (!(end > begin)) return;
  trace_.append_uniform(begin, end, jobs, rate);
}

std::vector<Time> Schedule::flows() const {
  std::vector<Time> out(n());
  for (std::size_t i = 0; i < n(); ++i) {
    out[i] = completion_[i] - release_[i];
  }
  return out;
}

Work Schedule::traced_work() const {
  Work total = 0.0;
  for (const TraceIntervalView iv : trace_) {
    const Time len = iv.length();
    for (std::size_t i = 0; i < iv.alive_count(); ++i) {
      total += iv.rate(i) * len;
    }
  }
  return total;
}

Work Schedule::traced_work(JobId id) const { return trace_.job_work(id); }

void Schedule::validate() const {
  auto fail = [](const std::string& msg) { throw std::logic_error("Schedule::validate: " + msg); };

  for (std::size_t i = 0; i < n(); ++i) {
    if (!std::isfinite(completion_[i])) {
      fail("job " + std::to_string(i) + " never completed");
    }
    // Even owning a full machine at speed s, job i needs size/speed time.
    const Time earliest = release_[i] + size_[i] / speed_;
    if (definitely_less(completion_[i], earliest, 1e-6)) {
      fail("job " + std::to_string(i) + " completed impossibly early");
    }
  }

  if (!has_trace_) return;

  const double cap = speed_ * machines_;
  Time prev_end = -kInfiniteTime;
  for (const TraceIntervalView iv : trace_) {
    if (!(iv.end() > iv.begin())) fail("empty trace interval");
    if (definitely_less(iv.begin(), prev_end, 1e-9)) fail("overlapping trace intervals");
    prev_end = iv.end();
    double sum = 0.0;
    JobId prev = kInvalidJob;
    for (const RateShare s : iv.shares()) {
      if (s.rate < -1e-9) fail("negative rate");
      if (s.rate > speed_ * (1.0 + 1e-6)) fail("per-job rate exceeds machine speed");
      if (prev != kInvalidJob && s.job <= prev) fail("shares not sorted by id");
      prev = s.job;
      sum += s.rate;
      if (definitely_less(completion_[s.job], iv.end(), 1e-9) ||
          definitely_less(iv.begin(), release_[s.job], 1e-9)) {
        fail("job " + std::to_string(s.job) + " traced outside its lifespan");
      }
    }
    if (sum > cap * (1.0 + 1e-6)) {
      std::ostringstream os;
      os << "interval [" << iv.begin() << "," << iv.end() << ") rate sum " << sum
         << " exceeds capacity " << cap;
      fail(os.str());
    }
  }

  // Per-job work conservation via the arena's CSR index: O(total entries)
  // for all jobs together, instead of O(n * entries) full rescans.
  for (std::size_t i = 0; i < n(); ++i) {
    const Work w = traced_work(static_cast<JobId>(i));
    if (!approx_equal(w, size_[i], 1e-6, 1e-6)) {
      std::ostringstream os;
      os << "job " << i << " traced work " << w << " != size " << size_[i];
      fail(os.str());
    }
  }
}

}  // namespace tempofair
