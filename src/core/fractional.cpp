#include "core/fractional.h"

#include <cmath>
#include <stdexcept>

namespace tempofair {

FractionalFlowResult fractional_flow_power(const Schedule& schedule, double k) {
  if (!schedule.has_trace()) {
    throw std::invalid_argument("fractional_flow_power: schedule has no trace");
  }
  if (!(k >= 1.0)) {
    throw std::invalid_argument("fractional_flow_power: k must be >= 1");
  }

  const std::size_t n = schedule.n();
  FractionalFlowResult out;
  out.per_job.assign(n, 0.0);

  // Track remaining work per job by scanning the trace forward.
  std::vector<double> remaining(n);
  for (std::size_t j = 0; j < n; ++j) {
    remaining[j] = schedule.size(static_cast<JobId>(j));
  }

  for (const TraceIntervalView iv : schedule.trace()) {
    const double len = iv.length();
    for (const RateShare s : iv.shares()) {
      const double p = schedule.size(s.job);
      const double r = schedule.release(s.job);
      // Within the interval, remaining(t) = A - B*(t - r) with
      //   B = rate, A = remaining at iv.begin + rate*(iv.begin - r).
      const double rem_a = remaining[s.job];
      const double a = iv.begin() - r;
      const double b = iv.end() - r;
      const double A = rem_a + s.rate * a;
      const double B = s.rate;
      // integral over u in [a,b] of k u^{k-1} (A - B u) / p du
      //   = [A u^k - B k/(k+1) u^{k+1}] / p  evaluated at b minus at a.
      auto antiderivative = [&](double u) {
        return (A * std::pow(u, k) - B * k / (k + 1.0) * std::pow(u, k + 1.0)) / p;
      };
      out.per_job[s.job] += antiderivative(b) - antiderivative(a);
      remaining[s.job] = rem_a - s.rate * len;
    }
  }
  for (double v : out.per_job) out.total += v;
  return out;
}

}  // namespace tempofair
