// Instance: an immutable, validated set of jobs forming one scheduling input.
//
// Construction validates the input (positive sizes, finite nonnegative
// releases) and assigns dense ids 0..n-1 in the order the jobs were given.
// Jobs are additionally indexable in release order, which the engine and the
// dual-fitting verifier rely on.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/job.h"

namespace tempofair {

class Instance {
 public:
  Instance() = default;

  /// Builds an instance from (release, size) pairs; ids are assigned 0..n-1
  /// in the given order.  Throws std::invalid_argument on bad input.
  static Instance from_pairs(std::span<const std::pair<Time, Work>> pairs);

  /// Builds from explicit jobs whose ids must already be exactly 0..n-1
  /// (in any order).  Throws std::invalid_argument otherwise.
  static Instance from_jobs(std::vector<Job> jobs);

  /// Convenience: n jobs, all released at `release`, sizes as given.
  static Instance batch(std::span<const Work> sizes, Time release = 0.0);

  [[nodiscard]] std::size_t n() const noexcept { return jobs_.size(); }
  [[nodiscard]] bool empty() const noexcept { return jobs_.empty(); }

  /// Jobs indexed by id.
  [[nodiscard]] const Job& job(JobId id) const { return jobs_.at(id); }
  [[nodiscard]] std::span<const Job> jobs() const noexcept { return jobs_; }

  /// Job ids sorted by (release, id); arrival order used by the engine.
  [[nodiscard]] std::span<const JobId> release_order() const noexcept {
    return release_order_;
  }

  [[nodiscard]] Work total_work() const noexcept { return total_work_; }
  [[nodiscard]] Work max_size() const noexcept { return max_size_; }
  [[nodiscard]] Work min_size() const noexcept { return min_size_; }
  [[nodiscard]] Time min_release() const noexcept { return min_release_; }
  [[nodiscard]] Time max_release() const noexcept { return max_release_; }

  /// A horizon by which every work-conserving schedule on m speed-s machines
  /// is guaranteed to have finished all jobs.
  [[nodiscard]] Time horizon_bound(int machines, double speed = 1.0) const;

  /// Returns a copy with all releases shifted so min_release() == 0.
  [[nodiscard]] Instance normalized() const;

  /// Concatenates two instances (ids of `other` are shifted past ours).
  [[nodiscard]] Instance merged_with(const Instance& other) const;

  [[nodiscard]] std::string summary() const;

 private:
  explicit Instance(std::vector<Job> jobs);

  std::vector<Job> jobs_;            // indexed by id
  std::vector<JobId> release_order_; // ids sorted by (release, id)
  Work total_work_ = 0.0;
  Work max_size_ = 0.0;
  Work min_size_ = 0.0;
  Time min_release_ = 0.0;
  Time max_release_ = 0.0;
};

}  // namespace tempofair
