// Flow-time metrics: l_k norms and distribution statistics.
//
// The paper's objective is the l_k norm of flow time, (sum_j F_j^k)^{1/k};
// k = 1 is total (average) flow, k = 2 balances average latency against
// variance (the "temporal fairness" objective), k = infinity is max flow.
#pragma once

#include <cstddef>
#include <mutex>
#include <span>
#include <vector>

#include "core/schedule.h"
#include "core/time_types.h"

namespace tempofair {

/// (sum_j v_j^k)^(1/k).  Requires k >= 1 and all v_j >= 0.  Computed in a
/// scale-invariant way (factors out max v) so large k does not overflow.
[[nodiscard]] double lk_norm(std::span<const double> values, double k);

/// sum_j v_j^k -- the "k-th power" objective the analysis works with.
/// Accumulated in the same vmax-rescaled form as lk_norm, so the result is
/// inf only when the true sum exceeds the double range (never from an
/// intermediate term alone).
[[nodiscard]] double lk_power_sum(std::span<const double> values, double k);

/// max_j v_j (the l_infinity norm).
[[nodiscard]] double linf_norm(std::span<const double> values);

/// p-th percentile (p in [0,100]) by linear interpolation.
[[nodiscard]] double percentile(std::span<const double> values, double p);

struct FlowStats {
  std::size_t n = 0;
  double l1 = 0.0;        ///< total flow time
  double l2 = 0.0;        ///< l2 norm of flow
  double l3 = 0.0;        ///< l3 norm of flow
  double linf = 0.0;      ///< max flow
  double mean = 0.0;
  double variance = 0.0;  ///< population variance of flows
  double stddev = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Summary statistics of a flow-time vector.
[[nodiscard]] FlowStats flow_stats(std::span<const double> flows);

/// Incremental flow-time metrics over a run still in flight.
///
/// The engine appends one flow per completion (RunRequest::live /
/// EngineOptions::live_metrics); any other thread may snapshot percentiles
/// and l_k norms of the completed-so-far prefix concurrently.  This is the
/// mid-run observability primitive behind tempofaird's QUERY_METRICS: a
/// tenant watches p99 / l_2 of its workload while the simulation runs.
///
/// Thread-safe.  Completion-granular (locks once per completed job, never
/// per engine event), so it adds no measurable cost to the fast path.
class LiveMetrics {
 public:
  LiveMetrics() = default;
  LiveMetrics(const LiveMetrics&) = delete;
  LiveMetrics& operator=(const LiveMetrics&) = delete;

  /// Declares how many jobs the run will complete (for progress queries).
  void set_expected(std::size_t n);
  /// Records one completed job's flow time.  Called by the engine.
  void record(Time flow);
  /// Forgets everything (reuse across runs).
  void reset();

  /// Completed-job count so far.
  [[nodiscard]] std::size_t completed() const;
  /// Declared total (0 if never set).
  [[nodiscard]] std::size_t expected() const;
  /// Full summary statistics of the completed-so-far flows.
  [[nodiscard]] FlowStats snapshot() const;
  /// l_k norm of the completed-so-far flows (k may be +infinity).
  [[nodiscard]] double lk(double k) const;
  /// p-th percentile (p in [0,100]) of the completed-so-far flows.  Served
  /// from a sorted cache invalidated per completion, so repeated queries
  /// between completions do not re-sort.
  [[nodiscard]] double percentile(double p) const;
  /// Copy of the completed-so-far flows, in completion order.
  [[nodiscard]] std::vector<double> flows() const;

 private:
  mutable std::mutex mutex_;
  std::vector<double> flows_;
  std::size_t expected_ = 0;
  /// Sorted view of flows_, rebuilt lazily by percentile(); guarded by
  /// mutex_ and invalidated by record()/reset().
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};
/// Summary statistics of a schedule's flow times.
[[nodiscard]] FlowStats flow_stats(const Schedule& schedule);

/// l_k norm of a schedule's flow times (k may be +infinity).
[[nodiscard]] double flow_lk_norm(const Schedule& schedule, double k);
/// sum_j F_j^k of a schedule.
[[nodiscard]] double flow_lk_power(const Schedule& schedule, double k);

// --- Weighted flow time (the weighted-flow literature [1,7,20]) ------------

/// sum_j w_j v_j^k.  Requires matching lengths, k >= 1, v >= 0, w >= 0.
/// Accumulated vmax-rescaled, like lk_power_sum.
[[nodiscard]] double weighted_lk_power(std::span<const double> values,
                                       std::span<const double> weights,
                                       double k);

/// The weighted l_k norm (sum_j w_j v_j^k)^(1/k); for k = infinity,
/// max_j over v_j with w_j > 0 (weights act as a support filter).
[[nodiscard]] double weighted_lk_norm(std::span<const double> values,
                                      std::span<const double> weights,
                                      double k);

/// sum_j w_j F_j^k of a schedule (weights from the instance).
[[nodiscard]] double weighted_flow_lk_power(const Schedule& schedule, double k);
/// Weighted l_k norm of a schedule's flows.
[[nodiscard]] double weighted_flow_lk_norm(const Schedule& schedule, double k);

}  // namespace tempofair
