// Event-driven continuous-time scheduling engine.
//
// Simulates an online policy on m identical machines with speed augmentation
// s, exactly (up to floating-point rounding): between consecutive events
// (arrival, completion, policy breakpoint) all rates are constant, so the
// engine advances analytically to the next event rather than stepping a
// clock.  The full piecewise-constant rate trace can be recorded for the
// fairness and dual-fitting analyses.
#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

#include "core/fast_forward.h"
#include "core/instance.h"
#include "core/job_stream.h"
#include "core/policy.h"
#include "core/schedule.h"

namespace tempofair {

struct EngineOptions {
  int machines = 1;
  /// Speed augmentation: each machine processes `speed` units of work per
  /// unit time.  OPT is always measured at speed 1.
  double speed = 1.0;
  /// Record the full rate trace (needed by fairness + dual-fitting analyses).
  bool record_trace = true;
  /// Hide sizes from the policy (AliveJob::size/remaining = NaN).  Refused
  /// for clairvoyant policies.
  bool hide_sizes = false;
  /// Safety valve: abort if the simulated clock passes this.
  Time max_time = kInfiniteTime;
  /// Safety valve: abort after this many engine iterations (guards against a
  /// policy that returns pathological breakpoints).
  std::size_t max_steps = 50'000'000;
  /// Fail fast after this many consecutive iterations that make no progress
  /// at all (clock did not advance, no completion, no arrival) -- e.g. a
  /// policy whose breakpoint is too small to move the clock in floating
  /// point.  Produces a livelock diagnostic instead of silently burning
  /// max_steps.
  std::size_t max_zero_progress_steps = 1000;
  /// Route the run through the epoch-coalesced fast path when the policy
  /// advertises a FastForward capability (see core/fast_forward.h).
  /// Results are byte-identical to the generic event loop; disable to force
  /// the generic loop, e.g. for equivalence testing.
  bool use_fast_path = true;
};

/// The epoch-coalescing kernel behind EngineOptions::use_fast_path.
///
/// Resolves a whole run for a FastForward-capable policy without ever
/// querying the policy: between consecutive arrivals the closed-form rule
/// fixes all rates, so the kernel keeps one sorted completion order over
/// the alive set and advances event to event analytically -- no
/// RateDecision allocation, rate validation, candidate scan, or policy
/// virtual call per event.  It replays the generic loop's floating-point
/// operations in the same order (shared share formulas, per-job division
/// before min, identical completion thresholds), so completion times and
/// the full trace are byte-identical to the generic path.
///
/// Buffers persist across runs, like EngineCore's.  Not thread-safe.
class FastForwardCore {
 public:
  [[nodiscard]] Schedule run(const Instance& instance, const FastForward& ff,
                             const EngineOptions& options,
                             std::string_view policy_name);
  /// Streaming variant: admits arrivals straight from `stream` (see
  /// core/job_stream.h) so the run never materializes all n jobs at once.
  [[nodiscard]] Schedule run(JobStream& stream, const FastForward& ff,
                             const EngineOptions& options,
                             std::string_view policy_name);

 private:
  template <typename Arrivals>
  Schedule run_impl(Arrivals& arrivals, Schedule schedule,
                    const FastForward& ff, const EngineOptions& options,
                    std::string_view policy_name);

  // Alive set: parallel arrays sorted by job id (trace rows want id order).
  // kUniformShare maintains ids_ only when a trace is recorded and leaves
  // the other four untouched; its primary storage is the ord_* arrays.
  std::vector<JobId> ids_;
  std::vector<Work> rem_;
  std::vector<Work> size_;
  std::vector<Time> release_;
  std::vector<double> weight_;
  /// Alive ids sorted by the policy's completion/priority key: remaining
  /// work DESCENDING for kUniformShare (parallel to ord_rem_/ord_thr_),
  /// priority order for kTopPriority.
  std::vector<JobId> order_;
  /// kUniformShare: remaining work, descending (next completer at back).
  std::vector<Work> ord_rem_;
  /// kUniformShare: per-job completion threshold kRelEps*size + kAbsEps,
  /// parallel to ord_rem_.
  std::vector<Work> ord_thr_;
  /// Per-alive rates in id order (kTopPriority trace rows).
  std::vector<double> rates_;
  std::vector<JobId> completing_;
  /// Ids of alive jobs admitted already under their completion threshold
  /// (degenerate sizes); almost always empty.
  std::vector<JobId> degen_ids_;
};

/// The engine's inner loop with persistent, reusable buffers.
///
/// One EngineCore can run many simulations back to back; the alive-set
/// arrays, the policy-facing AliveJob views, and the completion-candidate
/// scratch are kept across runs, so repeated simulations (sweeps,
/// competitive-ratio measurements) do not reallocate per run.  The alive
/// views are maintained incrementally on arrival/completion and updated in
/// place as work is processed -- never rebuilt from scratch per event --
/// and trace rows are emitted directly into the Schedule's columnar arena.
///
/// Not thread-safe; use one EngineCore per thread.
class EngineCore {
 public:
  /// Runs `policy` on `instance` and returns the complete schedule.
  /// Throws std::invalid_argument for bad options and std::runtime_error if
  /// the policy misbehaves (invalid rates, deadlock, livelock, step
  /// explosion).
  [[nodiscard]] Schedule run(const Instance& instance, Policy& policy,
                             const EngineOptions& options = {});

  /// Streaming run: jobs are pulled from `stream` in release order and the
  /// instance is never materialized.  Requires a FastForward-capable policy
  /// and options.use_fast_path (throws std::invalid_argument otherwise);
  /// use workload::materialize(stream) + run() for generic policies.
  [[nodiscard]] Schedule run(JobStream& stream, Policy& policy,
                             const EngineOptions& options = {});

 private:
  [[nodiscard]] bool takes_fast_path(const Policy& policy,
                                     const EngineOptions& options) const;
  struct LiveJob {
    JobId id;
    Time release;
    Work size;
    Work remaining;
    Work attained;
    double weight;
  };

  std::vector<LiveJob> alive_;   // sorted by id
  std::vector<AliveJob> views_;  // parallel to alive_; handed to the policy
  std::vector<JobId> ids_;       // parallel to alive_; trace-row emission
  /// Near-minimum predicted-completion candidates collected during the
  /// single rates pass (superset of the jobs that can complete this event).
  std::vector<std::size_t> candidates_;
  std::vector<std::size_t> completing_;  // indices into alive_
  FastForwardCore fast_;
};

/// Runs `policy` on `instance` with a fresh EngineCore.
[[nodiscard]] Schedule simulate(const Instance& instance, Policy& policy,
                                const EngineOptions& options = {});

/// Runs `policy` on a job stream with a fresh EngineCore (fast-path only;
/// see EngineCore::run(JobStream&, ...)).
[[nodiscard]] Schedule simulate(JobStream& stream, Policy& policy,
                                const EngineOptions& options = {});

}  // namespace tempofair
