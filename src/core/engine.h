// Event-driven continuous-time scheduling engine.
//
// Simulates an online policy on m identical machines with speed augmentation
// s, exactly (up to floating-point rounding): between consecutive events
// (arrival, completion, policy breakpoint) all rates are constant, so the
// engine advances analytically to the next event rather than stepping a
// clock.  The full piecewise-constant rate trace can be recorded for the
// fairness and dual-fitting analyses.
#pragma once

#include <cstddef>

#include "core/instance.h"
#include "core/policy.h"
#include "core/schedule.h"

namespace tempofair {

struct EngineOptions {
  int machines = 1;
  /// Speed augmentation: each machine processes `speed` units of work per
  /// unit time.  OPT is always measured at speed 1.
  double speed = 1.0;
  /// Record the full rate trace (needed by fairness + dual-fitting analyses).
  bool record_trace = true;
  /// Hide sizes from the policy (AliveJob::size/remaining = NaN).  Refused
  /// for clairvoyant policies.
  bool hide_sizes = false;
  /// Safety valve: abort if the simulated clock passes this.
  Time max_time = kInfiniteTime;
  /// Safety valve: abort after this many engine iterations (guards against a
  /// policy that returns pathological breakpoints).
  std::size_t max_steps = 50'000'000;
};

/// Runs `policy` on `instance` and returns the complete schedule.
/// Throws std::invalid_argument for bad options and std::runtime_error if the
/// policy misbehaves (invalid rates, deadlock, step explosion).
[[nodiscard]] Schedule simulate(const Instance& instance, Policy& policy,
                                const EngineOptions& options = {});

}  // namespace tempofair
