// Event-driven continuous-time scheduling engine.
//
// Simulates an online policy on m identical machines with speed augmentation
// s, exactly (up to floating-point rounding): between consecutive events
// (arrival, completion, policy breakpoint) all rates are constant, so the
// engine advances analytically to the next event rather than stepping a
// clock.  The full piecewise-constant rate trace can be recorded for the
// fairness and dual-fitting analyses.
//
// Public entry point: the RunRequest/RunResult facade (`run(...)` below).
// One serializable request struct describes a run completely -- policy spec,
// machine/speed configuration, safety valves, live hooks -- and one result
// struct carries everything a caller consumes, so the CLI tools, the bench
// registry, and tempofaird's wire protocol all speak the same API.  The
// older EngineOptions + simulate() overloads remain as thin deprecated
// shims over the same cores.
#pragma once

#include <atomic>
#include <cstddef>
#include <deque>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/fast_forward.h"
#include "core/instance.h"
#include "core/invariants.h"
#include "core/job_stream.h"
#include "core/metrics.h"
#include "core/policy.h"
#include "core/schedule.h"
#include "core/share_rules.h"

namespace tempofair {

/// Thrown when a run stops because RunRequest::cancel (or
/// EngineOptions::cancel) was set.  Derives from std::runtime_error so
/// legacy catch sites treat it as any other aborted run.
class RunCancelled : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct EngineOptions {
  int machines = 1;
  /// Speed augmentation: each machine processes `speed` units of work per
  /// unit time.  OPT is always measured at speed 1.
  double speed = 1.0;
  /// Record the full rate trace (needed by fairness + dual-fitting analyses).
  bool record_trace = true;
  /// Hide sizes from the policy (AliveJob::size/remaining = NaN).  Refused
  /// for clairvoyant policies.
  bool hide_sizes = false;
  /// Safety valve: abort if the simulated clock passes this.
  Time max_time = kInfiniteTime;
  /// Safety valve: abort after this many engine iterations (guards against a
  /// policy that returns pathological breakpoints).
  std::size_t max_steps = 50'000'000;
  /// Fail fast after this many consecutive iterations that make no progress
  /// at all (clock did not advance, no completion, no arrival) -- e.g. a
  /// policy whose breakpoint is too small to move the clock in floating
  /// point.  Produces a livelock diagnostic instead of silently burning
  /// max_steps.
  std::size_t max_zero_progress_steps = 1000;
  /// Route the run through the epoch-coalesced fast path when the policy
  /// advertises a FastForward capability (see core/fast_forward.h).
  /// Results are byte-identical to the generic event loop; disable to force
  /// the generic loop, e.g. for equivalence testing.
  bool use_fast_path = true;
  /// Invariant checking mode (core/invariants.h).  The process default is
  /// kSampled -- every invariant_sample_period'th epoch gets the full
  /// checker battery, end-of-run checks always run -- overridable via the
  /// TEMPOFAIR_INVARIANTS environment variable.  kExhaustive additionally
  /// fails the run (std::runtime_error) on any violation.
  InvariantMode invariants = default_invariant_mode();
  std::size_t invariant_sample_period = default_invariant_sample_period();
  /// When set, receives the run's InvariantStats (written before an
  /// exhaustive-mode violation throws).  The facade wires this into
  /// RunResult::invariants.  Must outlive the run.
  InvariantStats* invariant_stats = nullptr;
  /// Live hooks (not part of the serializable request): when set, the engine
  /// appends every completion's flow time here, so another thread can watch
  /// percentiles / l_k norms of a run in flight.  Must outlive the run.
  LiveMetrics* live_metrics = nullptr;
  /// When set, the engine polls this flag once per event and aborts the run
  /// with RunCancelled as soon as it reads true.  Must outlive the run.
  const std::atomic<bool>* cancel = nullptr;
};

/// One simulation run, described completely and serializably.
///
/// This is THE public way to run the engine: the CLI tools build one from
/// flags (harness/cli.h's shared vocabulary), the bench experiments build
/// one per measurement, and tempofaird decodes one from a SUBMIT_JOBS frame
/// -- identical semantics everywhere.  The workload itself (an Instance or
/// a JobStream) travels alongside the request, since workloads have their
/// own storage formats (CSV files, generator specs, wire frames).
///
/// Everything except the live hooks round-trips through the wire encoding
/// (serve/protocol.h) and the flag vocabulary (harness/cli.h).
struct RunRequest {
  /// Policy spec, resolved through policies/registry.h ("rr", "srpt",
  /// "laps:0.5", ...).  Ignored by the overloads that take an explicit
  /// Policy object.
  std::string policy = "rr";
  /// Optional workload spec string ("poisson:n=1000,load=0.9", "trace:f.csv",
  /// ...; see workload/spec.h).  The engine itself never reads it -- the
  /// field exists so one serializable request can *name* its workload:
  /// workload::run_spec() resolves it locally, and tempofaird synthesizes
  /// the jobs server-side when a SUBMIT carries a spec instead of job rows.
  /// Empty means the workload travels out-of-band (an Instance/JobStream).
  std::string workload;
  int machines = 1;
  /// Speed augmentation s (OPT is always measured at speed 1).
  double speed = 1.0;
  /// Record the full rate trace (fairness + dual-fitting analyses need it;
  /// metrics-only runs can turn it off and skip the trace memory).
  bool record_trace = true;
  /// Hide sizes from the policy; refused for clairvoyant policies.
  bool hide_sizes = false;
  Time max_time = kInfiniteTime;
  std::size_t max_steps = 50'000'000;
  std::size_t max_zero_progress_steps = 1000;
  bool use_fast_path = true;
  /// Invariant checking mode + sampling period (core/invariants.h); both
  /// serialize through the wire protocol and the CLI flag vocabulary.
  InvariantMode invariants = default_invariant_mode();
  std::size_t invariant_sample_period = default_invariant_sample_period();
  /// Live hooks; see EngineOptions.  Not serialized.
  LiveMetrics* live = nullptr;
  const std::atomic<bool>* cancel = nullptr;

  /// The equivalent legacy options struct (live hooks included).
  [[nodiscard]] EngineOptions engine_options() const;
};

/// Everything one run produces: the schedule (completions + optional trace),
/// the resolved policy name, ready-made flow statistics, and the engine wall
/// time.  Analyses needing more than FlowStats read `schedule` directly.
struct RunResult {
  Schedule schedule;
  /// The policy that ran (resolved name, e.g. "laps:0.50" -> "laps").
  std::string policy;
  /// Flow-time summary of the completed schedule.
  FlowStats stats;
  /// What the invariant layer observed (mode, epochs checked, violations,
  /// capped structured reports); see core/invariants.h.
  InvariantStats invariants;
  /// Wall-clock seconds spent inside the engine.
  double wall_seconds = 0.0;
};

/// The epoch-coalescing kernel behind EngineOptions::use_fast_path.
///
/// Resolves a whole run for a FastForward-capable policy without ever
/// querying the policy: between consecutive arrivals the closed-form rule
/// fixes all rates, so the kernel keeps one sorted completion order over
/// the alive set and advances event to event analytically -- no
/// RateDecision allocation, rate validation, candidate scan, or policy
/// virtual call per event.  It replays the generic loop's floating-point
/// operations in the same order (shared share formulas, per-job division
/// before min, identical completion thresholds), so completion times and
/// the full trace are byte-identical to the generic path.
///
/// Buffers persist across runs, like EngineCore's.  Not thread-safe.
class FastForwardCore {
 public:
  [[nodiscard]] Schedule run(const Instance& instance, const FastForward& ff,
                             const EngineOptions& options,
                             std::string_view policy_name,
                             const PolicyInvariantTraits& traits = {});
  /// Streaming variant: admits arrivals straight from `stream` (see
  /// core/job_stream.h) so the run never materializes all n jobs at once.
  [[nodiscard]] Schedule run(JobStream& stream, const FastForward& ff,
                             const EngineOptions& options,
                             std::string_view policy_name,
                             const PolicyInvariantTraits& traits = {});

 private:
  template <typename Arrivals>
  Schedule run_impl(Arrivals& arrivals, Schedule schedule,
                    const FastForward& ff, const EngineOptions& options,
                    std::string_view policy_name,
                    const PolicyInvariantTraits& traits);

  // Alive set: parallel arrays sorted by job id (trace rows want id order).
  // kUniformShare maintains ids_ only when a trace is recorded and leaves
  // the other four untouched; its primary storage is the ord_* arrays.
  std::vector<JobId> ids_;
  std::vector<Work> rem_;
  std::vector<Work> size_;
  std::vector<Time> release_;
  std::vector<double> weight_;
  /// Attained service, maintained with the generic loop's exact per-job
  /// arithmetic; only kept for the attained-dependent rule kinds
  /// (kEqualAttained / kLevelPriority -- kLatestArrival rides along so all
  /// three share one code path).
  std::vector<Work> attained_;
  /// Alive ids sorted by the policy's completion/priority key: remaining
  /// work DESCENDING for kUniformShare (parallel to ord_rem_/ord_thr_),
  /// priority order for kTopPriority.
  std::vector<JobId> order_;
  /// kUniformShare: remaining work, descending (next completer at back).
  std::vector<Work> ord_rem_;
  /// kUniformShare: per-job completion threshold kRelEps*size + kAbsEps,
  /// parallel to ord_rem_.
  std::vector<Work> ord_thr_;
  /// Per-alive rates in id order (kTopPriority trace rows).
  std::vector<double> rates_;
  std::vector<JobId> completing_;
  /// Ids of alive jobs admitted already under their completion threshold
  /// (degenerate sizes); almost always empty.
  std::vector<JobId> degen_ids_;
  /// kQuantumRR: the replicated ready queue (rotation order), mirroring
  /// QuantumRoundRobin::queue_ event for event.
  std::deque<JobId> rr_queue_;
  /// Shared-rule scratch (core/share_rules.h) for the SETF/LAPS/MLFQ
  /// kernels; buffers only, reused across events and runs.
  share_rules::SetfScratch setf_scratch_;
  share_rules::MlfqScratch mlfq_scratch_;
  std::vector<std::size_t> laps_idx_;
  /// Per-run invariant battery (core/invariants.h), reused across runs.
  InvariantSet inv_;
};

/// The engine's inner loop with persistent, reusable buffers.
///
/// One EngineCore can run many simulations back to back; the alive-set
/// arrays, the policy-facing AliveJob views, and the completion-candidate
/// scratch are kept across runs, so repeated simulations (sweeps,
/// competitive-ratio measurements) do not reallocate per run.  The alive
/// views are maintained incrementally on arrival/completion and updated in
/// place as work is processed -- never rebuilt from scratch per event --
/// and trace rows are emitted directly into the Schedule's columnar arena.
///
/// Not thread-safe; use one EngineCore per thread.
class EngineCore {
 public:
  // --- RunRequest facade (preferred) ---------------------------------------
  /// Runs the request's policy spec on `instance`.  Throws
  /// std::invalid_argument for a bad request or unknown policy spec,
  /// RunCancelled if request.cancel fires, std::runtime_error if the policy
  /// misbehaves (invalid rates, deadlock, livelock, step explosion).
  [[nodiscard]] RunResult run(const Instance& instance,
                              const RunRequest& request);
  /// Streaming variant; requires a FastForward-capable policy spec and
  /// request.use_fast_path (throws std::invalid_argument otherwise).
  [[nodiscard]] RunResult run(JobStream& stream, const RunRequest& request);
  /// As above with an explicit policy object (request.policy is ignored);
  /// for callers that construct parameterized policies directly.
  [[nodiscard]] RunResult run(const Instance& instance, Policy& policy,
                              const RunRequest& request);
  [[nodiscard]] RunResult run(JobStream& stream, Policy& policy,
                              const RunRequest& request);

  // --- legacy entry points (deprecated shims over the facade) --------------
  /// Runs `policy` on `instance` and returns the complete schedule.
  /// Throws std::invalid_argument for bad options and std::runtime_error if
  /// the policy misbehaves (invalid rates, deadlock, livelock, step
  /// explosion).  Deprecated: prefer the RunRequest overloads.
  [[nodiscard]] Schedule run(const Instance& instance, Policy& policy,
                             const EngineOptions& options = {});

  /// Streaming run: jobs are pulled from `stream` in release order and the
  /// instance is never materialized.  Requires a FastForward-capable policy
  /// and options.use_fast_path (throws std::invalid_argument otherwise);
  /// use workload::materialize(stream) + run() for generic policies.
  /// Deprecated: prefer the RunRequest overloads.
  [[nodiscard]] Schedule run(JobStream& stream, Policy& policy,
                             const EngineOptions& options = {});

 private:
  [[nodiscard]] bool takes_fast_path(const Policy& policy,
                                     const EngineOptions& options) const;
  struct LiveJob {
    JobId id;
    Time release;
    Work size;
    Work remaining;
    Work attained;
    double weight;
  };

  std::vector<LiveJob> alive_;   // sorted by id
  std::vector<AliveJob> views_;  // parallel to alive_; handed to the policy
  std::vector<JobId> ids_;       // parallel to alive_; trace-row emission
  /// Near-minimum predicted-completion candidates collected during the
  /// single rates pass (superset of the jobs that can complete this event).
  std::vector<std::size_t> candidates_;
  std::vector<std::size_t> completing_;  // indices into alive_
  FastForwardCore fast_;
  /// Per-run invariant battery for the generic loop (the fast path runs its
  /// own inside FastForwardCore).
  InvariantSet inv_;
};

/// Runs `request` on `instance` with a fresh EngineCore.  The single entry
/// point shared by the CLI, the bench registry, and the tempofaird wire
/// protocol.
[[nodiscard]] RunResult run(const Instance& instance,
                            const RunRequest& request = {});

/// Streaming facade run (fast-path-capable policy specs only).
[[nodiscard]] RunResult run(JobStream& stream, const RunRequest& request = {});

/// Facade run with an explicit policy object (request.policy ignored).
[[nodiscard]] RunResult run(const Instance& instance, Policy& policy,
                            const RunRequest& request);
[[nodiscard]] RunResult run(JobStream& stream, Policy& policy,
                            const RunRequest& request);

}  // namespace tempofair
