// Event-driven continuous-time scheduling engine.
//
// Simulates an online policy on m identical machines with speed augmentation
// s, exactly (up to floating-point rounding): between consecutive events
// (arrival, completion, policy breakpoint) all rates are constant, so the
// engine advances analytically to the next event rather than stepping a
// clock.  The full piecewise-constant rate trace can be recorded for the
// fairness and dual-fitting analyses.
#pragma once

#include <cstddef>
#include <vector>

#include "core/instance.h"
#include "core/policy.h"
#include "core/schedule.h"

namespace tempofair {

struct EngineOptions {
  int machines = 1;
  /// Speed augmentation: each machine processes `speed` units of work per
  /// unit time.  OPT is always measured at speed 1.
  double speed = 1.0;
  /// Record the full rate trace (needed by fairness + dual-fitting analyses).
  bool record_trace = true;
  /// Hide sizes from the policy (AliveJob::size/remaining = NaN).  Refused
  /// for clairvoyant policies.
  bool hide_sizes = false;
  /// Safety valve: abort if the simulated clock passes this.
  Time max_time = kInfiniteTime;
  /// Safety valve: abort after this many engine iterations (guards against a
  /// policy that returns pathological breakpoints).
  std::size_t max_steps = 50'000'000;
  /// Fail fast after this many consecutive iterations that make no progress
  /// at all (clock did not advance, no completion, no arrival) -- e.g. a
  /// policy whose breakpoint is too small to move the clock in floating
  /// point.  Produces a livelock diagnostic instead of silently burning
  /// max_steps.
  std::size_t max_zero_progress_steps = 1000;
};

/// The engine's inner loop with persistent, reusable buffers.
///
/// One EngineCore can run many simulations back to back; the alive-set
/// arrays, the policy-facing AliveJob views, and the completion-candidate
/// scratch are kept across runs, so repeated simulations (sweeps,
/// competitive-ratio measurements) do not reallocate per run.  The alive
/// views are maintained incrementally on arrival/completion and updated in
/// place as work is processed -- never rebuilt from scratch per event --
/// and trace rows are emitted directly into the Schedule's columnar arena.
///
/// Not thread-safe; use one EngineCore per thread.
class EngineCore {
 public:
  /// Runs `policy` on `instance` and returns the complete schedule.
  /// Throws std::invalid_argument for bad options and std::runtime_error if
  /// the policy misbehaves (invalid rates, deadlock, livelock, step
  /// explosion).
  [[nodiscard]] Schedule run(const Instance& instance, Policy& policy,
                             const EngineOptions& options = {});

 private:
  struct LiveJob {
    JobId id;
    Time release;
    Work size;
    Work remaining;
    Work attained;
    double weight;
  };

  std::vector<LiveJob> alive_;   // sorted by id
  std::vector<AliveJob> views_;  // parallel to alive_; handed to the policy
  std::vector<JobId> ids_;       // parallel to alive_; trace-row emission
  /// Near-minimum predicted-completion candidates collected during the
  /// single rates pass (superset of the jobs that can complete this event).
  std::vector<std::size_t> candidates_;
  std::vector<std::size_t> completing_;  // indices into alive_
};

/// Runs `policy` on `instance` with a fresh EngineCore.
[[nodiscard]] Schedule simulate(const Instance& instance, Policy& policy,
                                const EngineOptions& options = {});

}  // namespace tempofair
