// FastForwardCore: the epoch-coalescing kernel (see core/fast_forward.h).
//
// Byte-identity with the generic loop rests on three facts about IEEE-754
// round-to-nearest arithmetic, all used below:
//
//   F1. Division is monotone in the numerator, so
//           min_i (rem_i / share) == (min_i rem_i) / share
//       bitwise: the kernel reads the earliest completion off one end of
//       one sorted structure instead of dividing per alive job.
//   F2. Subtracting the same rounded delta from every element preserves
//       weak ordering (x <= y implies fl(x - d) <= fl(y - d)), so the
//       sorted-by-remaining order survives every uniform advance and is
//       maintained incrementally, never re-sorted.
//   F3. x - fl(0 * dt) == x exactly for x > 0, so jobs at rate zero can be
//       skipped during the advance without changing their stored bits.
//
// What the kernel does NOT do is compress the per-event remaining-work
// update itself: a chain of individually rounded subtractions has no closed
// form that reproduces the same bits, so the advance stays O(alive) per
// event.  The win is structural -- no policy virtual call, no RateDecision
// allocation, no rate validation pass, no completion-candidate scan, no
// policy-facing view maintenance per event -- plus the streaming arrival
// path that never materializes the instance.
//
// Data layout (kUniformShare): the remaining-sorted order is the PRIMARY
// storage -- three parallel arrays (ord_rem_, ord_thr_, order_) sorted by
// remaining work DESCENDING, so the next completer sits at the back, the
// advance is one fused contiguous loop, and completions pop off the end
// with no memmove.  The id-sorted alive list (ids_) is maintained only
// when a trace is recorded, since trace rows are the only consumer; a
// trace-off RR run touches no id-sorted state at all.  kTopPriority and
// kWeightedShare keep the id-sorted arrays primary (their rates/trace
// rows are per-job anyway) with order_ as an id-indirected priority order.
//
// Completion detection is exact, not windowed: after an advance the kernel
// tests `rem <= kRelEps*size + kAbsEps` -- the generic loop's final test --
// directly.  Scanning from the front of the sorted order and stopping at
// the first job with rem > kRelEps*max_size + kAbsEps covers every possible
// completer, because a job passing its own threshold necessarily has
// rem <= kRelEps*max_size + kAbsEps (sizes never exceed the running max).
#include <algorithm>
#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/engine.h"
#include "core/share_rules.h"
#include "core/simd.h"
#include "obs/obs.h"

namespace tempofair {

namespace {

[[noreturn]] void engine_fail(const std::string& msg) {
  throw std::runtime_error("tempofair::simulate: " + msg);
}

void validate_options(const EngineOptions& options) {
  if (options.machines < 1) {
    throw std::invalid_argument("simulate: machines must be >= 1");
  }
  if (!(options.speed > 0.0) || !std::isfinite(options.speed)) {
    throw std::invalid_argument("simulate: speed must be positive and finite");
  }
}

void validate_descriptor(const FastForward& ff, std::string_view policy_name) {
  switch (ff.kind) {
    case FastForwardKind::kNone:
      throw std::invalid_argument("fast_forward: policy " +
                                  std::string(policy_name) +
                                  " has no FastForward capability");
    case FastForwardKind::kUniformShare:
      if (ff.uniform_share == nullptr) {
        throw std::invalid_argument(
            "fast_forward: policy " + std::string(policy_name) +
            " advertises kUniformShare without a uniform_share function");
      }
      break;
    case FastForwardKind::kWeightedShare:
      if (ff.weighted_rates == nullptr) {
        throw std::invalid_argument(
            "fast_forward: policy " + std::string(policy_name) +
            " advertises kWeightedShare without a weighted_rates function");
      }
      break;
    case FastForwardKind::kTopPriority:
      break;
    case FastForwardKind::kQuantumRR:
      if (!(ff.quantum > 0.0) || !std::isfinite(ff.quantum)) {
        throw std::invalid_argument(
            "fast_forward: policy " + std::string(policy_name) +
            " advertises kQuantumRR with a non-positive quantum");
      }
      if (ff.switch_cost < 0.0 || !std::isfinite(ff.switch_cost)) {
        throw std::invalid_argument(
            "fast_forward: policy " + std::string(policy_name) +
            " advertises kQuantumRR with a negative switch cost");
      }
      break;
    case FastForwardKind::kEqualAttained:
      if (!(ff.level_tolerance >= 0.0) || !std::isfinite(ff.level_tolerance)) {
        throw std::invalid_argument(
            "fast_forward: policy " + std::string(policy_name) +
            " advertises kEqualAttained with a negative or non-finite "
            "level tolerance");
      }
      break;
    case FastForwardKind::kLatestArrival:
      if (!(ff.beta > 0.0) || ff.beta > 1.0) {
        throw std::invalid_argument(
            "fast_forward: policy " + std::string(policy_name) +
            " advertises kLatestArrival with beta outside (0, 1]");
      }
      break;
    case FastForwardKind::kLevelPriority:
      if (!(ff.mlfq_base > 0.0) || !std::isfinite(ff.mlfq_base)) {
        throw std::invalid_argument(
            "fast_forward: policy " + std::string(policy_name) +
            " advertises kLevelPriority with a non-positive base quantum");
      }
      if (!(ff.mlfq_growth > 1.0) || !std::isfinite(ff.mlfq_growth)) {
        throw std::invalid_argument(
            "fast_forward: policy " + std::string(policy_name) +
            " advertises kLevelPriority with growth <= 1");
      }
      break;
  }
}

// Pull-based arrival cursors; both expose the same tiny interface so
// run_impl is generic over materialized and streaming sources.
class InstanceArrivals {
 public:
  explicit InstanceArrivals(const Instance& instance)
      : instance_(&instance), order_(instance.release_order()) {
    if (!order_.empty()) ahead_release_ = instance.job(order_[0]).release;
  }

  [[nodiscard]] bool exhausted() const { return next_ == order_.size(); }
  // The next release is cached at take() time: the kernel peeks it at least
  // twice per event (the dt min and the admit loop), and each uncached peek
  // is a bounds-checked Instance::job() lookup.
  [[nodiscard]] Time peek_release() const { return ahead_release_; }
  [[nodiscard]] Job take() {
    const Job j = instance_->job(order_[next_++]);
    if (next_ < order_.size()) {
      ahead_release_ = instance_->job(order_[next_]).release;
    }
    return j;
  }
  [[nodiscard]] std::size_t total() const { return order_.size(); }

 private:
  const Instance* instance_;
  std::span<const JobId> order_;
  std::size_t next_ = 0;
  Time ahead_release_ = 0.0;
};

class StreamArrivals {
 public:
  explicit StreamArrivals(JobStream& stream)
      : stream_(&stream), count_(stream.n()) {
    if (count_ > 0) ahead_ = fetch(0);
  }

  [[nodiscard]] bool exhausted() const { return taken_ == count_; }
  [[nodiscard]] Time peek_release() const { return ahead_.release; }
  [[nodiscard]] Job take() {
    const Job j = ahead_;
    ++taken_;
    if (taken_ < count_) ahead_ = fetch(taken_);
    return j;
  }
  [[nodiscard]] std::size_t total() const { return count_; }

 private:
  // Enforce contract S2 (core/job_stream.h) at the boundary: a generator bug
  // must fail loudly, not silently corrupt a million-job run.
  [[nodiscard]] Job fetch(std::size_t i) {
    const Job j = stream_->next();
    if (j.id != static_cast<JobId>(i)) {
      throw std::invalid_argument(
          "JobStream: call " + std::to_string(i) + " yielded id " +
          std::to_string(j.id) + "; ids must be dense and sequential (S2)");
    }
    if (!std::isfinite(j.release) || j.release < 0.0 ||
        j.release < prev_release_) {
      throw std::invalid_argument(
          "JobStream: job " + std::to_string(i) +
          " release is negative, non-finite, or decreasing (S2)");
    }
    if (!(j.size > 0.0) || !std::isfinite(j.size) || !(j.weight > 0.0) ||
        !std::isfinite(j.weight)) {
      throw std::invalid_argument(
          "JobStream: job " + std::to_string(i) +
          " must have positive finite size and weight (S2)");
    }
    prev_release_ = j.release;
    return j;
  }

  JobStream* stream_;
  std::size_t count_;
  std::size_t taken_ = 0;
  Job ahead_{};
  Time prev_release_ = 0.0;
};

}  // namespace

Schedule FastForwardCore::run(const Instance& instance, const FastForward& ff,
                              const EngineOptions& options,
                              std::string_view policy_name,
                              const PolicyInvariantTraits& traits) {
  validate_options(options);
  validate_descriptor(ff, policy_name);
  InstanceArrivals arrivals(instance);
  return run_impl(arrivals, Schedule(instance, options.machines, options.speed),
                  ff, options, policy_name, traits);
}

Schedule FastForwardCore::run(JobStream& stream, const FastForward& ff,
                              const EngineOptions& options,
                              std::string_view policy_name,
                              const PolicyInvariantTraits& traits) {
  validate_options(options);
  validate_descriptor(ff, policy_name);
  StreamArrivals arrivals(stream);
  return run_impl(arrivals,
                  Schedule(arrivals.total(), options.machines, options.speed),
                  ff, options, policy_name, traits);
}

template <typename Arrivals>
Schedule FastForwardCore::run_impl(Arrivals& arrivals, Schedule schedule,
                                   const FastForward& ff,
                                   const EngineOptions& options,
                                   std::string_view policy_name,
                                   const PolicyInvariantTraits& traits) {
  obs::ScopedTimer run_timer("engine.run");
  schedule.set_trace_recorded(options.record_trace);

  const std::size_t total_jobs = arrivals.total();
  LiveMetrics* const live = options.live_metrics;
  if (live != nullptr) live->set_expected(total_jobs);

  inv_.begin_run(
      InvariantRunProfile{options.machines, options.speed,
                          std::string(policy_name), traits},
      options.invariants, options.invariant_sample_period, &schedule);
  auto finish_invariants = [&] {
    inv_.finish();
    if (options.invariant_stats != nullptr) {
      *options.invariant_stats = inv_.stats();
    }
    if (options.invariants == InvariantMode::kExhaustive) {
      throw_if_violated(inv_.stats(), policy_name);
    }
  };

  if (arrivals.exhausted()) {
    finish_invariants();
    obs::add("engine.runs", 1);
    obs::add(obs_counters::kFastForwardRuns, 1);
    return schedule;
  }

  const int machines = options.machines;
  const double speed = options.speed;
  const bool trace = options.record_trace;
  const std::string name(policy_name);
  const FastForwardKind kind = ff.kind;

  ids_.clear();
  rem_.clear();
  size_.clear();
  release_.clear();
  weight_.clear();
  attained_.clear();
  order_.clear();
  ord_rem_.clear();
  ord_thr_.clear();
  rates_.clear();
  completing_.clear();
  degen_ids_.clear();
  rr_queue_.clear();

  // kQuantumRR: the replicated QuantumRoundRobin phase state (see
  // policies/quantum_rr.cpp -- every transition below mirrors its rates()
  // bit for bit, evaluated once per event exactly when the generic loop
  // would query the policy).
  enum class QPhase : std::uint8_t { kRunning, kSwitching };
  QPhase qphase = QPhase::kRunning;
  Time qphase_end = -kInfiniteTime;
  bool qphase_started = false;

  const bool uniform = ff.kind == FastForwardKind::kUniformShare;
  // The shared-rule kinds (core/share_rules.h): rates are a pure function
  // of the (attained, release) columns, evaluated per event by the very
  // template the policy's rates() instantiates.  All three keep the
  // id-sorted arrays primary plus the attained_ column.
  const bool rule_kind = kind == FastForwardKind::kEqualAttained ||
                         kind == FastForwardKind::kLatestArrival ||
                         kind == FastForwardKind::kLevelPriority;
  // kUniformShare keeps only the ord_* arrays hot; the id-sorted alive list
  // exists purely to emit id-ordered trace rows.
  const bool keep_ids = !uniform || options.record_trace;

  // Position of `id` in the id-sorted alive arrays.
  auto pos_of = [&](JobId id) -> std::size_t {
    return static_cast<std::size_t>(
        std::lower_bound(ids_.begin(), ids_.end(), id) - ids_.begin());
  };

  // kTopPriority: the exact strict weak order the policy's rates() sorts by,
  // tie-breaks included (fast_forward.h, FastForwardPriority).
  auto prio_less = [&](std::size_t a, std::size_t b) {
    if (ff.priority == FastForwardPriority::kRemainingThenReleaseThenId &&
        rem_[a] != rem_[b]) {
      return rem_[a] < rem_[b];
    }
    if (ff.priority == FastForwardPriority::kSizeThenReleaseThenId &&
        size_[a] != size_[b]) {
      return size_[a] < size_[b];
    }
    if (release_[a] != release_[b]) return release_[a] < release_[b];
    return ids_[a] < ids_[b];
  };

  // Jobs whose size is already under the completion threshold can complete
  // at rate zero (the generic loop's zero-rate candidate branch); while any
  // is alive, completion scans must cover the whole alive set, not just the
  // sorted front / running prefix.
  std::size_t degenerate_alive = 0;
  Work max_size_admitted = 0.0;

  auto admit_arrivals = [&](Time t) -> std::size_t {
    std::size_t admitted = 0;
    while (!arrivals.exhausted() && arrivals.peek_release() <= t + kAbsEps) {
      const Job j = arrivals.take();
      schedule.admit_job(j.id, j.release, j.size, j.weight);
      if (keep_ids) {
        const auto p = static_cast<std::ptrdiff_t>(pos_of(j.id));
        ids_.insert(ids_.begin() + p, j.id);
        if (!uniform) {
          rem_.insert(rem_.begin() + p, j.size);
          size_.insert(size_.begin() + p, j.size);
          release_.insert(release_.begin() + p, j.release);
          weight_.insert(weight_.begin() + p, j.weight);
          if (rule_kind) attained_.insert(attained_.begin() + p, 0.0);
        }
      }
      max_size_admitted = std::max(max_size_admitted, j.size);
      const Work thr = kRelEps * j.size + kAbsEps;
      if (j.size <= thr) {
        ++degenerate_alive;
        degen_ids_.push_back(j.id);
      }
      if (uniform) {
        // Descending by current remaining work (the arriving job's remaining
        // is its size), so the next completer sits at the back.  Ties
        // resolve arbitrarily -- completion detection tests exact
        // thresholds, never positions.
        const auto it =
            std::lower_bound(ord_rem_.begin(), ord_rem_.end(), j.size,
                             [](Work r, Work v) { return r > v; });
        const auto off = it - ord_rem_.begin();
        ord_rem_.insert(it, j.size);
        ord_thr_.insert(ord_thr_.begin() + off, thr);
        order_.insert(order_.begin() + off, j.id);
      } else if (kind == FastForwardKind::kTopPriority) {
        const auto it = std::lower_bound(
            order_.begin(), order_.end(), j.id, [&](JobId a, JobId b) {
              return prio_less(pos_of(a), pos_of(b));
            });
        order_.insert(it, j.id);
      } else if (kind == FastForwardKind::kQuantumRR) {
        rr_queue_.push_back(j.id);  // mirrors QuantumRoundRobin::on_arrival
      }
      ++admitted;
    }
    return admitted;
  };

  // Alive count, whichever layout this kind maintains.
  auto alive_count = [&]() -> std::size_t {
    return uniform ? ord_rem_.size() : ids_.size();
  };

  Time now = arrivals.peek_release();
  admit_arrivals(now);

  std::size_t steps = 0;
  std::size_t zero_progress_streak = 0;
  std::size_t intervals_emitted = 0;
  std::size_t ff_events = 0;
  std::size_t ff_epochs = 0;
  bool epoch_open = false;
  std::vector<double> wrates;  // kWeightedShare per-event rates, id order

  while (alive_count() > 0 || !arrivals.exhausted()) {
    if (options.cancel != nullptr &&
        options.cancel->load(std::memory_order_relaxed)) {
      throw RunCancelled("tempofair::run: cancelled with policy " + name +
                         " at t=" + std::to_string(now));
    }
    if (++steps > options.max_steps) {
      engine_fail("exceeded max_steps=" + std::to_string(options.max_steps) +
                  " with policy " + name);
    }

    if (alive_count() == 0) {
      // Idle gap: jump to the next arrival.
      now = arrivals.peek_release();
      admit_arrivals(now);
      epoch_open = false;
      continue;
    }

    const std::size_t n = alive_count();
    if (!epoch_open) {
      ++ff_epochs;
      epoch_open = true;
    }
    ++ff_events;

    // --- closed-form rates and earliest predicted completion --------------
    // The generic loop's clamp_nonneg/min(r, speed) post-processing is an
    // identity on every rate these rules produce (all nonnegative, none
    // above speed), so the raw closed-form values are already the bits the
    // slow path would use.
    double share = 0.0;            // kUniformShare
    std::size_t run_count = 0;     // kTopPriority / kQuantumRR
    bool qrr_all = false;          // kQuantumRR: n <= m, everyone runs
    // kQuantumRR quantum/switch expiry; kEqualAttained/kLevelPriority
    // shared-rule breakpoint (the policy's RateDecision::max_duration).
    Time breakpoint_dt = kInfiniteTime;
    Time completion_dt = kInfiniteTime;
    switch (kind) {
      case FastForwardKind::kUniformShare:
        share = ff.uniform_share(n, machines, speed);
        // F1: the minimum of rem/share over the alive set is the back of
        // the descending remaining order, divided once.
        completion_dt = ord_rem_.back() / share;
        break;
      case FastForwardKind::kTopPriority:
        run_count = std::min(n, static_cast<std::size_t>(machines));
        for (std::size_t i = 0; i < run_count; ++i) {
          const Time cdt = rem_[pos_of(order_[i])] / speed;
          if (cdt < completion_dt) completion_dt = cdt;
        }
        break;
      case FastForwardKind::kWeightedShare:
        wrates = ff.weighted_rates(weight_, machines, speed);
        if (wrates.size() != n) {
          engine_fail("fast_forward: weighted_rates returned " +
                      std::to_string(wrates.size()) + " rates for " +
                      std::to_string(n) + " alive jobs");
        }
        // Zero-weight shares divide to +inf (rem > 0) and drop out of the
        // min, so the unmasked kernel matches the positive-rate-guarded
        // scalar min bitwise.
        completion_dt = simd::min_ratio(rem_.data(), wrates.data(), n);
        break;
      case FastForwardKind::kQuantumRR: {
        const auto m = static_cast<std::size_t>(machines);
        if (n <= m) {
          // Everyone runs continuously; quanta do not apply.
          qphase = QPhase::kRunning;
          qphase_started = false;
          qrr_all = true;
          run_count = n;
          for (std::size_t i = 0; i < n; ++i) {
            const Time cdt = rem_[i] / speed;
            if (cdt < completion_dt) completion_dt = cdt;
          }
          break;  // no breakpoint: max_duration stays infinite
        }
        // Expired phase: rotate after a quantum, resume after a switch.
        if (qphase_started && now >= qphase_end - kAbsEps) {
          if (qphase == QPhase::kRunning) {
            const std::size_t rotate = std::min(m, rr_queue_.size());
            for (std::size_t i = 0; i < rotate; ++i) {
              rr_queue_.push_back(rr_queue_.front());
              rr_queue_.pop_front();
            }
            if (ff.switch_cost > 0.0) {
              qphase = QPhase::kSwitching;
              qphase_end = now + ff.switch_cost;
            } else {
              qphase_end = now + ff.quantum;
            }
          } else {
            qphase = QPhase::kRunning;
            qphase_end = now + ff.quantum;
          }
        } else if (!qphase_started) {
          qphase = QPhase::kRunning;
          qphase_end = now + ff.quantum;
          qphase_started = true;
        }
        if (qphase == QPhase::kRunning) {
          run_count = std::min(m, rr_queue_.size());
          for (std::size_t i = 0; i < run_count; ++i) {
            const Time cdt = rem_[pos_of(rr_queue_[i])] / speed;
            if (cdt < completion_dt) completion_dt = cdt;
          }
        }  // kSwitching: all machines idle, run_count stays 0
        breakpoint_dt = std::max(qphase_end - now, kAbsEps);
        break;
      }
      // The shared-rule kinds evaluate the policy's exact rule body
      // (core/share_rules.h) over the kernel's own columns -- identical
      // floating-point program, so identical rates and breakpoints -- then
      // take the earliest completion as the generic loop does: min over
      // positive-rate jobs of rem/rate.  simd::min_ratio divides rate-zero
      // jobs to +inf (rem > 0 always), which cannot win the min, so the
      // unmasked vector reduction matches the guarded scalar min bitwise.
      case FastForwardKind::kEqualAttained:
        breakpoint_dt = share_rules::setf_rates(
            n, machines, speed, ff.level_tolerance,
            [this](std::size_t i) { return attained_[i]; }, rates_,
            setf_scratch_);
        completion_dt = simd::min_ratio(rem_.data(), rates_.data(), n);
        break;
      case FastForwardKind::kLatestArrival:
        share_rules::laps_rates(
            n, machines, speed, ff.beta,
            [this](std::size_t i) { return release_[i]; }, rates_, laps_idx_);
        completion_dt = simd::min_ratio(rem_.data(), rates_.data(), n);
        break;
      case FastForwardKind::kLevelPriority:
        breakpoint_dt = share_rules::mlfq_rates(
            n, machines, speed, ff.mlfq_base, ff.mlfq_growth,
            [this](std::size_t i) { return attained_[i]; },
            [this](std::size_t i) { return release_[i]; }, rates_,
            mlfq_scratch_);
        completion_dt = simd::min_ratio(rem_.data(), rates_.data(), n);
        break;
      case FastForwardKind::kNone:
        engine_fail("fast path invoked without a FastForward capability");
    }

    // --- next event: arrival, completion, breakpoint, or max_time ---------
    Time dt = std::min(completion_dt, breakpoint_dt);
    if (!arrivals.exhausted()) {
      dt = std::min(dt, arrivals.peek_release() - now);
    }
    if (std::isfinite(options.max_time)) {
      if (now >= options.max_time) {
        engine_fail("simulated clock passed max_time");
      }
      dt = std::min(dt, options.max_time - now);
    }
    if (!std::isfinite(dt)) {
      engine_fail("deadlock: policy " + name + " allocates zero rate to all " +
                  std::to_string(n) +
                  " alive jobs with no arrival or breakpoint pending");
    }
    dt = std::max(dt, 0.0);
    const Time step_start = now;

    // --- advance, emitting the trace row before the clock moves -----------
    // The invariant battery sees the epoch before any remaining-work
    // mutation; epoch_due() is the only per-event cost it adds here.
    const bool inv_due = dt > 0.0 && inv_.epoch_due();
    auto check_id_epoch = [&](std::span<const double> epoch_rates) {
      InvariantEpoch epoch;
      epoch.begin = now;
      epoch.end = now + dt;
      epoch.jobs = ids_;
      epoch.rates = epoch_rates;
      epoch.remaining = rem_;
      epoch.sizes = size_;
      // The attained-tracking kernels expose their column so the
      // attained-accounting witness can audit it against size - remaining.
      if (rule_kind) epoch.attained = attained_;
      inv_.check_epoch(epoch);
    };
    if (dt > 0.0) {
      switch (kind) {
        case FastForwardKind::kUniformShare: {
          if (trace) {
            schedule.push_interval_uniform(now, now + dt, ids_, share);
            ++intervals_emitted;
          }
          if (inv_due) {
            InvariantEpoch epoch;
            epoch.begin = now;
            epoch.end = now + dt;
            epoch.jobs = order_;
            epoch.uniform = true;
            epoch.uniform_rate = share;
            epoch.remaining = ord_rem_;
            epoch.remaining_sorted_descending = true;
            inv_.check_epoch(epoch);
          }
          // One shared delta (every rate is the same double), one fused
          // contiguous pass (vectorized; elementwise, so bitwise-equal to
          // the scalar loop); F2 keeps the descending order sorted through
          // it.
          const Work delta = share * dt;
          simd::sub_scalar(ord_rem_.data(), ord_rem_.size(), delta);
          break;
        }
        case FastForwardKind::kTopPriority: {
          if (trace || inv_due) {
            rates_.assign(n, 0.0);
            for (std::size_t i = 0; i < run_count; ++i) {
              rates_[pos_of(order_[i])] = speed;
            }
            if (inv_due) check_id_epoch(rates_);
            if (trace) {
              schedule.push_interval(now, now + dt, ids_, rates_);
              ++intervals_emitted;
            }
          }
          // F3: waiting jobs (rate 0) keep their bits untouched; only the
          // running prefix advances, so the priority order is preserved.
          const Work delta = speed * dt;
          for (std::size_t i = 0; i < run_count; ++i) {
            rem_[pos_of(order_[i])] -= delta;
          }
          break;
        }
        case FastForwardKind::kWeightedShare:
          if (inv_due) check_id_epoch(wrates);
          if (trace) {
            schedule.push_interval(now, now + dt, ids_, wrates);
            ++intervals_emitted;
          }
          simd::sub_product(rem_.data(), wrates.data(), n, dt);
          break;
        case FastForwardKind::kQuantumRR: {
          if (trace || inv_due) {
            rates_.assign(n, qrr_all ? speed : 0.0);
            if (!qrr_all) {
              for (std::size_t i = 0; i < run_count; ++i) {
                rates_[pos_of(rr_queue_[i])] = speed;
              }
            }
            if (inv_due) check_id_epoch(rates_);
            if (trace) {
              // The generic loop emits rows even for all-idle switching
              // phases; so does the kernel.
              schedule.push_interval(now, now + dt, ids_, rates_);
              ++intervals_emitted;
            }
          }
          // F3 again: only the running set loses work.
          const Work delta = speed * dt;
          if (qrr_all) {
            simd::sub_scalar(rem_.data(), rem_.size(), delta);
          } else {
            for (std::size_t i = 0; i < run_count; ++i) {
              rem_[pos_of(rr_queue_[i])] -= delta;
            }
          }
          break;
        }
        case FastForwardKind::kEqualAttained:
        case FastForwardKind::kLatestArrival:
        case FastForwardKind::kLevelPriority:
          if (inv_due) check_id_epoch(rates_);
          if (trace) {
            schedule.push_interval(now, now + dt, ids_, rates_);
            ++intervals_emitted;
          }
          // The generic loop's exact per-job advance (delta = rate * dt,
          // attained += delta, remaining -= delta), fused over the SoA
          // columns.  Rate-zero jobs keep their bits untouched (F3), so
          // advancing everyone is safe and branch-free.
          simd::advance(attained_.data(), rem_.data(), rates_.data(), n, dt);
          break;
        case FastForwardKind::kNone:
          break;  // unreachable; rejected above
      }
      now += dt;
    }

    // --- completions: exact threshold test, same as the generic loop ------
    completing_.clear();
    if (uniform) {
      // Scan backward (ascending remaining).  A completer satisfies
      // rem <= its own threshold; the scan may stop at the first job with
      // rem > kRelEps*max_size + kAbsEps, since every per-job threshold is
      // bounded by that window.  With a degenerate job alive the window
      // argument does not apply (rate-zero jobs complete too), so scan all.
      std::size_t lo = ord_rem_.size();
      const Work window = kRelEps * max_size_admitted + kAbsEps;
      while (lo > 0) {
        const std::size_t i = lo - 1;
        if (ord_rem_[i] > ord_thr_[i] && ord_rem_[i] > window &&
            degenerate_alive == 0) {
          break;
        }
        --lo;
      }
      // Compact the scanned suffix in place, completing as we go.
      std::size_t w = lo;
      for (std::size_t i = lo; i < ord_rem_.size(); ++i) {
        if (ord_rem_[i] <= ord_thr_[i]) {
          completing_.push_back(order_[i]);
        } else {
          ord_rem_[w] = ord_rem_[i];
          ord_thr_[w] = ord_thr_[i];
          order_[w] = order_[i];
          ++w;
        }
      }
      ord_rem_.resize(w);
      ord_thr_.resize(w);
      order_.resize(w);
      for (const JobId id : completing_) {
        schedule.set_completion(id, now);
        if (live != nullptr) live->record(now - schedule.release(id));
        if (keep_ids) ids_.erase(ids_.begin() + static_cast<std::ptrdiff_t>(pos_of(id)));
      }
    } else {
      std::size_t order_scan_end = 0;  // prefix of order_ the scan covered
      if (degenerate_alive > 0 || kind == FastForwardKind::kWeightedShare ||
          rule_kind || (kind == FastForwardKind::kQuantumRR && qrr_all)) {
        for (std::size_t i = 0; i < n; ++i) {
          if (rem_[i] <= kRelEps * size_[i] + kAbsEps) {
            completing_.push_back(ids_[i]);
          }
        }
        order_scan_end = order_.size();
      } else if (kind == FastForwardKind::kQuantumRR) {
        // Only the running queue prefix lost work (none while switching).
        for (std::size_t i = 0; i < run_count; ++i) {
          const std::size_t p = pos_of(rr_queue_[i]);
          if (rem_[p] <= kRelEps * size_[p] + kAbsEps) {
            completing_.push_back(rr_queue_[i]);
          }
        }
      } else {  // kTopPriority: only running jobs lose work
        for (std::size_t i = 0; i < run_count; ++i) {
          const std::size_t p = pos_of(order_[i]);
          if (rem_[p] <= kRelEps * size_[p] + kAbsEps) {
            completing_.push_back(order_[i]);
          }
        }
        order_scan_end = run_count;
      }

      if (!completing_.empty()) {
        if (kind == FastForwardKind::kQuantumRR) {
          // Mirrors QuantumRoundRobin::on_completion: the job may sit
          // anywhere in the queue (front if it was running).
          for (const JobId id : completing_) {
            const auto it =
                std::find(rr_queue_.begin(), rr_queue_.end(), id);
            if (it != rr_queue_.end()) rr_queue_.erase(it);
          }
        } else if (kind == FastForwardKind::kTopPriority) {
          const auto scan_end =
              order_.begin() + static_cast<std::ptrdiff_t>(
                                   std::min(order_scan_end, order_.size()));
          order_.erase(
              std::remove_if(order_.begin(), scan_end,
                             [&](JobId id) {
                               return std::find(completing_.begin(),
                                                completing_.end(),
                                                id) != completing_.end();
                             }),
              scan_end);
        }
        for (const JobId id : completing_) {
          schedule.set_completion(id, now);
          if (live != nullptr) live->record(now - schedule.release(id));
          const auto p = static_cast<std::ptrdiff_t>(pos_of(id));
          ids_.erase(ids_.begin() + p);
          rem_.erase(rem_.begin() + p);
          size_.erase(size_.begin() + p);
          release_.erase(release_.begin() + p);
          weight_.erase(weight_.begin() + p);
          if (rule_kind) attained_.erase(attained_.begin() + p);
        }
      }
    }
    if (degenerate_alive > 0 && !completing_.empty()) {
      // Sole owner of the degenerate count: every branch above defers the
      // decrement here.  Degenerate jobs are rare enough that linear
      // membership only ever runs while one is alive.
      for (const JobId id : completing_) {
        const auto it = std::find(degen_ids_.begin(), degen_ids_.end(), id);
        if (it != degen_ids_.end()) {
          degen_ids_.erase(it);
          --degenerate_alive;
        }
      }
    }

    const std::size_t admitted = admit_arrivals(now);
    if (admitted > 0) epoch_open = false;

    // Livelock guard, mirrored from the generic loop.  With closed-form
    // rates a zero-progress event is essentially unreachable (every alive
    // job has remaining > kAbsEps and some rate is positive), but the guard
    // stays so a latent bug fails with a diagnostic instead of burning
    // max_steps.
    if (now > step_start || !completing_.empty() || admitted > 0) {
      zero_progress_streak = 0;
    } else if (++zero_progress_streak >= options.max_zero_progress_steps) {
      engine_fail("livelock: " + std::to_string(zero_progress_streak) +
                  " consecutive zero-progress fast-path events (no clock "
                  "advance, completion, or arrival) with policy " +
                  name + " at t=" + std::to_string(now) + " with " +
                  std::to_string(alive_count()) + " alive jobs");
    }
  }

  if (trace) schedule.finalize_trace();
  finish_invariants();

  obs::add("engine.runs", 1);
  obs::add("engine.events", steps);
  obs::add("engine.jobs", total_jobs);
  obs::add("engine.trace_intervals", intervals_emitted);
  obs::add(obs_counters::kFastForwardRuns, 1);
  obs::add(obs_counters::kFastForwardEvents, ff_events);
  obs::add(obs_counters::kFastForwardEpochs, ff_epochs);
  return schedule;
}

}  // namespace tempofair
