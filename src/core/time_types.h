// Core scalar types and numeric conventions used throughout tempofair.
//
// The simulator works in continuous time with piecewise-constant processing
// rates.  Time and work are plain doubles; all comparisons that decide event
// ordering go through the tolerance helpers below so that simultaneous events
// (a completion coinciding with an arrival, ties in attained service, ...)
// are resolved consistently everywhere.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace tempofair {

/// Continuous simulation time (seconds, abstract units).
using Time = double;
/// Amount of processing (machine-seconds at speed 1).
using Work = double;
/// Dense job identifier; an Instance always uses ids 0..n-1.
using JobId = std::uint32_t;

inline constexpr Time kInfiniteTime = std::numeric_limits<Time>::infinity();
inline constexpr JobId kInvalidJob = std::numeric_limits<JobId>::max();

/// Relative tolerance used by the engine and the analysis toolkit.
inline constexpr double kRelEps = 1e-9;
/// Absolute floor used when comparing quantities that may legitimately be 0.
inline constexpr double kAbsEps = 1e-12;

/// True if |a - b| is negligible relative to the magnitudes involved.
[[nodiscard]] inline bool approx_equal(double a, double b,
                                       double rel = kRelEps,
                                       double abs = kAbsEps) noexcept {
  const double diff = std::fabs(a - b);
  if (diff <= abs) return true;
  return diff <= rel * std::fmax(std::fabs(a), std::fabs(b));
}

/// True if a is definitely smaller than b (outside the tolerance band).
[[nodiscard]] inline bool definitely_less(double a, double b,
                                          double rel = kRelEps,
                                          double abs = kAbsEps) noexcept {
  return a < b && !approx_equal(a, b, rel, abs);
}

/// Clamp tiny negative values (accumulated float error) to exactly zero.
[[nodiscard]] inline double clamp_nonneg(double v, double abs = 1e-9) noexcept {
  return (v < 0.0 && v > -abs) ? 0.0 : v;
}

}  // namespace tempofair
