// JobStream: a pull-based source of jobs in release order.
//
// The Instance-based entry points materialize every job up front; for
// million-job runs that is an avoidable O(n) staging cost (and an O(n)
// allocation spike) when the workload is generated procedurally anyway.  A
// JobStream yields jobs one at a time in nondecreasing release order with
// dense sequential ids, so the engine's fast path can admit arrivals
// directly from the generator with O(1) lookahead and never hold more than
// the alive set in memory.
//
// Contract:
//   S1. n() is the exact number of jobs the stream will yield.
//   S2. next() is called exactly n() times; call i (0-based) returns a job
//       with id == i, release nondecreasing in i, size > 0, weight > 0,
//       all finite and releases >= 0.
//
// Generators live in workload/stream.h; InstanceJobStream adapts an
// existing Instance for tests and equivalence checks.
#pragma once

#include <cstddef>

#include "core/job.h"

namespace tempofair {

class JobStream {
 public:
  virtual ~JobStream() = default;
  JobStream() = default;
  JobStream(const JobStream&) = delete;
  JobStream& operator=(const JobStream&) = delete;

  /// Total number of jobs this stream yields (S1).
  [[nodiscard]] virtual std::size_t n() const noexcept = 0;
  /// The next job, in release order with sequential ids (S2).
  [[nodiscard]] virtual Job next() = 0;
};

}  // namespace tempofair
