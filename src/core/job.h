// Job: the unit of demand in the paper's model (Section 2).
//
// A job j has a release (arrival) time r_j -- the first moment the online
// scheduler learns of it -- and a processing requirement p_j.  A schedule on
// m identical machines assigns each alive job a machine share m_j(t) in [0,1]
// with sum_j m_j(t) <= m; job j completes once it has accumulated p_j units
// of processing.
#pragma once

#include "core/time_types.h"

namespace tempofair {

struct Job {
  JobId id = kInvalidJob;
  Time release = 0.0;
  Work size = 0.0;
  /// Importance weight for *weighted* flow-time objectives (sum_j w_j F_j^k,
  /// cf. the weighted-flow literature the paper builds on [1,7,20]).  The
  /// paper's own objective is unweighted: weight = 1.
  double weight = 1.0;

  friend bool operator==(const Job&, const Job&) = default;
};

/// Total order used whenever "arrived no later than" must be strict
/// (e.g. the rank |A(t, r_j)| in the dual-fitting construction): earlier
/// release first, ties broken by id.
[[nodiscard]] inline bool arrives_before(const Job& a, const Job& b) noexcept {
  if (a.release != b.release) return a.release < b.release;
  return a.id < b.id;
}

}  // namespace tempofair
