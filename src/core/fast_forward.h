// FastForward: the epoch-coalescing capability a policy can opt into.
//
// Between consecutive arrivals ("an epoch") many policies allocate rates by
// a closed-form rule -- Round Robin serves every alive job at the same
// share, FCFS/SJF/SRPT dedicate whole machines to the top-m jobs of a fixed
// priority order, weight-proportional RR water-fills static weights.  Under
// such a rule the whole epoch is determined by one sorted structure over
// the alive set: completions happen in sorted remaining(-per-rate) order
// and every event is resolved analytically, with no per-event policy query,
// rate validation, completion-candidate scan, or RateDecision allocation.
//
// A policy opts in by overriding Policy::fast_forward() to return a
// descriptor of its closed form.  The engine then routes the run through
// FastForwardCore instead of the generic event loop.  The contract:
//
//   C1. The descriptor must produce *bitwise* the rates the policy's own
//       rates() would return for every alive set the run can reach.  The
//       kernel replays the generic loop's floating-point operations in the
//       same order (shared share formulas, min-by-monotone-division,
//       identical completion thresholds), so schedules -- completion times
//       and the full trace -- are byte-identical between the two paths.
//   C2. The policy must be stateless across engine callbacks: on_arrival /
//       on_completion / rates() must not carry state the allocation rule
//       depends on.  The fast path never invokes them.
//   C3. The rule may depend only on the alive jobs' (id, release, size,
//       remaining, weight) and the run constants (machines, speed).  No
//       max_duration breakpoints (the descriptor kinds below are all
//       event-driven-only).
//
// Policies with breakpoints or genuinely dynamic state (SETF, MLFQ,
// quantum-RR, age-weighted WRR, LAPS) keep kind = kNone and run on the
// generic loop unchanged.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace tempofair {

enum class FastForwardKind : std::uint8_t {
  /// No closed form; the generic event loop is used.
  kNone = 0,
  /// Every alive job receives the same rate, given by uniform_share()
  /// (Round Robin: speed * min(1, m / n)).  Completions happen in sorted
  /// remaining-work order.
  kUniformShare,
  /// Rates are waterfill(static weights, s*m, s) -- weight-proportional RR.
  /// Shares only change at events; completions in sorted remaining/rate
  /// order, recomputed per event via the same waterfill the policy calls.
  kWeightedShare,
  /// The m highest-priority alive jobs each run on a full machine (rate =
  /// speed), the rest wait at rate 0.  Priority is one of PriorityOrder;
  /// only the running jobs' remaining work changes, so the sorted order is
  /// maintained incrementally across events.
  kTopPriority,
};

/// Priority orders for FastForwardKind::kTopPriority; each is the exact
/// strict weak order the corresponding policy's rates() uses, including
/// tie-breaks.
enum class FastForwardPriority : std::uint8_t {
  kReleaseThenId,           ///< FCFS: (release, id)
  kSizeThenReleaseThenId,   ///< SJF:  (size, release, id)
  kRemainingThenReleaseThenId,  ///< SRPT: (remaining, release, id)
};

/// The descriptor a policy returns from Policy::fast_forward().
struct FastForward {
  FastForwardKind kind = FastForwardKind::kNone;
  /// Only read when kind == kTopPriority.
  FastForwardPriority priority = FastForwardPriority::kReleaseThenId;
  /// Only read when kind == kUniformShare: the exact share formula, shared
  /// with the policy's rates() so both paths compute identical doubles.
  double (*uniform_share)(std::size_t n_alive, int machines,
                          double speed) = nullptr;
  /// Only read when kind == kWeightedShare: rates for the alive weights (in
  /// job-id order), again the very function the policy's rates() calls.
  std::vector<double> (*weighted_rates)(std::span<const double> weights,
                                        int machines, double speed) = nullptr;

  [[nodiscard]] bool enabled() const noexcept {
    return kind != FastForwardKind::kNone;
  }
};

namespace obs_counters {
/// Epochs (maximal arrival-to-arrival segments) resolved by the kernel.
inline constexpr const char* kFastForwardEpochs = "engine.fastforward.epochs";
/// Events the kernel resolved analytically; each would have cost a policy
/// rates() query (vector allocation + validation + candidate scan) on the
/// generic loop.
inline constexpr const char* kFastForwardEvents = "engine.fastforward.events";
/// Runs that took the fast path end to end.
inline constexpr const char* kFastForwardRuns = "engine.fastforward.runs";
}  // namespace obs_counters

}  // namespace tempofair
