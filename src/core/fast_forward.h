// FastForward: the epoch-coalescing capability a policy can opt into.
//
// Between consecutive arrivals ("an epoch") many policies allocate rates by
// a closed-form rule -- Round Robin serves every alive job at the same
// share, FCFS/SJF/SRPT dedicate whole machines to the top-m jobs of a fixed
// priority order, weight-proportional RR water-fills static weights.  Under
// such a rule the whole epoch is determined by one sorted structure over
// the alive set: completions happen in sorted remaining(-per-rate) order
// and every event is resolved analytically, with no per-event policy query,
// rate validation, completion-candidate scan, or RateDecision allocation.
//
// A policy opts in by overriding Policy::fast_forward() to return a
// descriptor of its closed form.  The engine then routes the run through
// FastForwardCore instead of the generic event loop.  The contract:
//
//   C1. The descriptor must produce *bitwise* the rates the policy's own
//       rates() would return for every alive set the run can reach.  The
//       kernel replays the generic loop's floating-point operations in the
//       same order (shared share formulas, min-by-monotone-division,
//       identical completion thresholds), so schedules -- completion times
//       and the full trace -- are byte-identical between the two paths.
//   C2. Either the policy is stateless across engine callbacks (on_arrival /
//       on_completion / rates() carry no state the allocation rule depends
//       on), or its state machine is replicated exactly inside the kernel
//       and the descriptor carries its parameters (kQuantumRR: the kernel
//       mirrors QuantumRoundRobin's queue/phase transitions event for
//       event).  The fast path never invokes the callbacks.
//   C3. The rule may depend only on the alive jobs' (id, release, size,
//       remaining, weight, attained -- the kernel maintains an attained
//       column with the generic loop's exact per-job arithmetic), the run
//       constants (machines, speed), and -- for kQuantumRR -- the
//       replicated queue/phase state.  Breakpoints are allowed only when
//       the kernel reproduces them bit for bit (the quantum/switch
//       expiries of kQuantumRR, the shared-rule breakpoints of
//       kEqualAttained/kLevelPriority).
//
// Attained-service and arrival-order rules (SETF, LAPS, MLFQ) qualify via
// core/share_rules.h: the one rule body is a template both the policy's
// rates() and the kernel instantiate, so the two paths execute identical
// floating-point programs.  Policies with breakpoints the kernel does not
// model or with genuinely dynamic allocation state (age-weighted WRR) keep
// kind = kNone and run on the generic loop unchanged.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace tempofair {

enum class FastForwardKind : std::uint8_t {
  /// No closed form; the generic event loop is used.
  kNone = 0,
  /// Every alive job receives the same rate, given by uniform_share()
  /// (Round Robin: speed * min(1, m / n)).  Completions happen in sorted
  /// remaining-work order.
  kUniformShare,
  /// Rates are waterfill(static weights, s*m, s) -- weight-proportional RR.
  /// Shares only change at events; completions in sorted remaining/rate
  /// order, recomputed per event via the same waterfill the policy calls.
  kWeightedShare,
  /// The m highest-priority alive jobs each run on a full machine (rate =
  /// speed), the rest wait at rate 0.  Priority is one of PriorityOrder;
  /// only the running jobs' remaining work changes, so the sorted order is
  /// maintained incrementally across events.
  kTopPriority,
  /// Time-sliced Round Robin (QuantumRoundRobin): the kernel replicates the
  /// policy's ready-queue/phase state machine -- first min(m, queue) jobs
  /// run at full speed for one quantum, rotate to the back, optionally
  /// separated by an all-idle context switch -- using the `quantum` /
  /// `switch_cost` fields below.  Epochs between quantum expiries are
  /// closed-form, so the run never queries the policy.
  kQuantumRR,
  /// Fluid SETF: machines go to jobs in increasing attained-service order,
  /// groups tied within `level_tolerance` share; the kernel maintains the
  /// attained column itself and evaluates share_rules::setf_rates -- the
  /// very template the policy's rates() instantiates -- each event,
  /// breakpoints (group catch-up) included.
  kEqualAttained,
  /// LAPS(beta): the ceil(beta*n) latest arrivals split the machines
  /// equally (share_rules::laps_rates); event-driven only, no breakpoint.
  kLatestArrival,
  /// MLFQ(base, growth): the m jobs of least (level, release, id) run at
  /// full speed, with level-crossing breakpoints
  /// (share_rules::mlfq_rates over the kernel's attained column).
  kLevelPriority,
};

/// Priority orders for FastForwardKind::kTopPriority; each is the exact
/// strict weak order the corresponding policy's rates() uses, including
/// tie-breaks.
enum class FastForwardPriority : std::uint8_t {
  kReleaseThenId,           ///< FCFS: (release, id)
  kSizeThenReleaseThenId,   ///< SJF:  (size, release, id)
  kRemainingThenReleaseThenId,  ///< SRPT: (remaining, release, id)
};

/// The descriptor a policy returns from Policy::fast_forward().
struct FastForward {
  FastForwardKind kind = FastForwardKind::kNone;
  /// Only read when kind == kTopPriority.
  FastForwardPriority priority = FastForwardPriority::kReleaseThenId;
  /// Only read when kind == kUniformShare: the exact share formula, shared
  /// with the policy's rates() so both paths compute identical doubles.
  double (*uniform_share)(std::size_t n_alive, int machines,
                          double speed) = nullptr;
  /// Only read when kind == kWeightedShare: rates for the alive weights (in
  /// job-id order), again the very function the policy's rates() calls.
  std::vector<double> (*weighted_rates)(std::span<const double> weights,
                                        int machines, double speed) = nullptr;
  /// Only read when kind == kQuantumRR: the exact doubles the policy was
  /// constructed with, so the replicated state machine computes identical
  /// phase boundaries.
  double quantum = 0.0;
  double switch_cost = 0.0;
  /// Only read when kind == kEqualAttained: Setf's level_tolerance, verbatim.
  double level_tolerance = 0.0;
  /// Only read when kind == kLatestArrival: Laps's beta, verbatim.
  double beta = 0.0;
  /// Only read when kind == kLevelPriority: Mlfq's construction parameters,
  /// verbatim.
  double mlfq_base = 0.0;
  double mlfq_growth = 0.0;

  [[nodiscard]] bool enabled() const noexcept {
    return kind != FastForwardKind::kNone;
  }
};

namespace obs_counters {
/// Epochs (maximal arrival-to-arrival segments) resolved by the kernel.
inline constexpr const char* kFastForwardEpochs = "engine.fastforward.epochs";
/// Events the kernel resolved analytically; each would have cost a policy
/// rates() query (vector allocation + validation + candidate scan) on the
/// generic loop.
inline constexpr const char* kFastForwardEvents = "engine.fastforward.events";
/// Runs that took the fast path end to end.
inline constexpr const char* kFastForwardRuns = "engine.fastforward.runs";
}  // namespace obs_counters

}  // namespace tempofair
