#include "analysis/dualfit.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "lpsolve/rational.h"
#include "obs/obs.h"

namespace tempofair::analysis {

namespace {

/// integral over [a, b] of k (t - r)^(k-1) dt  =  (b-r)^k - (a-r)^k.
double age_power_integral(double a, double b, double r, double k) {
  return std::pow(b - r, k) - std::pow(a - r, k);
}

}  // namespace

DualFitResult dual_fit_certificate(const Schedule& schedule,
                                   const DualFitOptions& options) {
  if (!schedule.has_trace()) {
    throw std::invalid_argument("dual_fit_certificate: schedule has no trace");
  }
  const double k = options.k;
  const double eps = options.eps;
  if (!(k >= 1.0)) throw std::invalid_argument("dual_fit_certificate: k must be >= 1");
  if (!(eps > 0.0) || eps > 0.1) {
    throw std::invalid_argument("dual_fit_certificate: eps must be in (0, 0.1]");
  }

  obs::ScopedTimer cert_timer("dualfit.certificate");

  DualFitResult res;
  res.k = k;
  res.eps = eps;
  res.delta = eps;  // the paper sets delta = eps
  res.gamma = options.gamma > 0.0 ? options.gamma : k * std::pow(k / eps, k);
  res.speed = schedule.speed();
  res.machines = schedule.machines();

  const std::size_t n = schedule.n();
  const int m = schedule.machines();

  std::vector<double> flow(n), fk(n), fkm1(n);
  for (std::size_t j = 0; j < n; ++j) {
    flow[j] = schedule.flow(static_cast<JobId>(j));
    fk[j] = std::pow(flow[j], k);
    fkm1[j] = std::pow(flow[j], k - 1.0);
    res.rr_power += fk[j];
  }

  // ---- alpha_j --------------------------------------------------------------
  std::vector<double> alpha(n, 0.0);
  std::vector<JobId> by_arrival;   // alive jobs sorted by (release, id)
  std::vector<double> prefix;      // prefix sums of per-j' integrals
  std::size_t trace_intervals = 0;
  for (const TraceIntervalView iv : schedule.trace()) {
    ++trace_intervals;
    const std::size_t nt = iv.alive_count();
    if (nt == 0) continue;
    const bool overloaded = nt >= static_cast<std::size_t>(m);

    if (!overloaded) {
      for (const JobId job : iv.jobs()) {
        alpha[job] +=
            age_power_integral(iv.begin(), iv.end(), schedule.release(job), k);
      }
      continue;
    }

    // Overloaded: alpha_j gains sum_{j' arrived no later} integral of
    // k (t - r_{j'})^{k-1} / n_t.  Sort the alive set by arrival and use
    // prefix sums so each interval costs O(n_t log n_t).
    by_arrival.assign(iv.jobs().begin(), iv.jobs().end());
    std::sort(by_arrival.begin(), by_arrival.end(), [&](JobId a, JobId b) {
      const Time ra = schedule.release(a), rb = schedule.release(b);
      if (ra != rb) return ra < rb;
      return a < b;
    });
    prefix.assign(nt + 1, 0.0);
    for (std::size_t i = 0; i < nt; ++i) {
      prefix[i + 1] =
          prefix[i] + age_power_integral(iv.begin(), iv.end(),
                                         schedule.release(by_arrival[i]), k);
    }
    for (std::size_t i = 0; i < nt; ++i) {
      // by_arrival[i] has rank i+1; it collects the terms of all jobs with
      // rank <= i+1 (those that arrived no later than it), averaged by n_t.
      alpha[by_arrival[i]] += prefix[i + 1] / static_cast<double>(nt);
    }
  }
  for (std::size_t j = 0; j < n; ++j) {
    alpha[j] -= eps * fk[j];
    res.alpha_sum += alpha[j];
  }

  // ---- beta_t ---------------------------------------------------------------
  // beta is piecewise constant with breakpoints at r_j and C_j + delta F_j.
  // Build it as a sorted event list; value_scale = (1/2 - 3 eps) / m.
  const double beta_coeff = (0.5 - 3.0 * eps) / static_cast<double>(m);
  struct BetaEvent {
    Time t;
    double delta_value;
  };
  std::vector<BetaEvent> events;
  events.reserve(2 * n);
  for (std::size_t j = 0; j < n; ++j) {
    const Time start = schedule.release(static_cast<JobId>(j));
    const Time stop = schedule.completion(static_cast<JobId>(j)) + res.delta * flow[j];
    events.push_back(BetaEvent{start, beta_coeff * fkm1[j]});
    events.push_back(BetaEvent{stop, -beta_coeff * fkm1[j]});
  }
  std::sort(events.begin(), events.end(),
            [](const BetaEvent& a, const BetaEvent& b) { return a.t < b.t; });

  // Pieces: (start time, beta value on [start, next start)).
  std::vector<std::pair<Time, double>> beta_pieces;
  beta_pieces.reserve(events.size() + 1);
  double running = 0.0;
  std::size_t i = 0;
  double beta_integral = 0.0;
  Time prev_t = events.empty() ? 0.0 : events.front().t;
  while (i < events.size()) {
    const Time t = events[i].t;
    beta_integral += running * (t - prev_t);
    prev_t = t;
    while (i < events.size() && events[i].t == t) {
      running += events[i].delta_value;
      ++i;
    }
    beta_pieces.emplace_back(t, std::max(running, 0.0));
  }
  // (running is ~0 after the last event; the final piece has beta = 0.)
  res.beta_term = static_cast<double>(m) * beta_integral;
  res.dual_objective = res.alpha_sum - res.beta_term;

  // ---- Lemmas 1 and 2 -------------------------------------------------------
  const double tol = 1e-7 * std::max(1.0, res.rr_power);
  res.lemma1_ok = res.alpha_sum >= (0.5 - eps) * res.rr_power - tol;
  res.lemma2_ok = res.beta_term <= (0.5 - 2.0 * eps) * res.rr_power + tol;
  {
    // Tolerance-free recheck of both lemma inequalities in exact rational
    // arithmetic over the (exactly representable) double values; fails
    // closed if the 128-bit arithmetic overflows.
    using lpsolve::Rational;
    const Rational half = Rational::from_ratio(1, 2);
    const Rational e = Rational::from_double(eps);
    const Rational rr = Rational::from_double(res.rr_power);
    res.lemmas_exact =
        Rational::from_double(res.alpha_sum) >= (half - e) * rr &&
        Rational::from_double(res.beta_term) <= (half - e - e) * rr;
  }

  // ---- Dual feasibility -----------------------------------------------------
  // For each job j and each beta piece [t_i, t_{i+1}): the RHS
  //   gamma ((t - r_j)^k + p_j^k)/p_j + beta(piece)
  // is nondecreasing in t inside the piece, so its minimum is at
  // t = max(t_i, r_j); a piece entirely before r_j is skipped.
  //
  // Windowed scan instead of the naive O(n * pieces) sweep: binary-search
  // the first piece whose window reaches past r_j, then walk forward and
  // stop once the beta-free lower bound
  //   base(t) = gamma ((t - r_j)^k + p_j^k) / p_j
  // provably exceeds the job's running minimum slack.  base(t) is
  // nondecreasing in t and beta >= 0 with rhs = base + beta (rounding is
  // monotone, so rhs >= base bitwise), hence no later piece -- nor the
  // beta = 0 tail -- can lower this job's min slack once the bound clears
  // it.  Violations (slack < 0) force 0 < rhs < lhs, so their scale is
  // lhs and the largest relative violation sits at the min-slack piece,
  // which the scan has already visited.  The relative margin keeps the
  // cutoff conservative against pow() rounding wobble between pieces.
  res.min_slack = kInfiniteTime;
  res.max_relative_violation = 0.0;
  std::size_t feasibility_checks = 0;
  for (std::size_t j = 0; j < n; ++j) {
    const double pj = schedule.size(static_cast<JobId>(j));
    const double rj = schedule.release(static_cast<JobId>(j));
    const double lhs = alpha[j] / pj;
    const double pjk = std::pow(pj, k);
    double job_min_slack = kInfiniteTime;
    auto base_at = [&](Time t) {
      return res.gamma * (std::pow(std::max(t - rj, 0.0), k) + pjk) / pj;
    };
    auto check = [&](double base, double beta_value) {
      ++feasibility_checks;
      const double rhs = base + beta_value;
      const double slack = rhs - lhs;
      job_min_slack = std::min(job_min_slack, slack);
      if (slack < 0.0) {
        const double scale = std::max({std::fabs(lhs), std::fabs(rhs), 1e-300});
        res.max_relative_violation =
            std::max(res.max_relative_violation, -slack / scale);
      }
    };

    if (beta_pieces.empty()) {
      check(base_at(rj), 0.0);
      res.min_slack = std::min(res.min_slack, job_min_slack);
      continue;
    }

    // First piece whose [start, end) reaches past rj: the piece containing
    // rj, or piece 0 when rj precedes every breakpoint.
    const auto q = std::upper_bound(
        beta_pieces.begin(), beta_pieces.end(), rj,
        [](Time t, const std::pair<Time, double>& piece) {
          return t < piece.first;
        });
    const std::size_t p0 =
        q == beta_pieces.begin()
            ? 0
            : static_cast<std::size_t>(q - beta_pieces.begin()) - 1;

    bool cut_off = false;
    for (std::size_t p = p0; p < beta_pieces.size(); ++p) {
      const double base = base_at(std::max(beta_pieces[p].first, rj));
      if (p > p0 &&
          base - lhs > job_min_slack + 1e-9 * (std::fabs(base) + std::fabs(lhs))) {
        cut_off = true;
        break;
      }
      check(base, beta_pieces[p].second);
    }
    if (!cut_off) {
      // Tail beyond the last event: beta = 0.
      check(base_at(std::max(beta_pieces.back().first, rj)), 0.0);
    }
    res.min_slack = std::min(res.min_slack, job_min_slack);
  }
  res.feasible = res.max_relative_violation <= 1e-7;

  // ---- Objective ------------------------------------------------------------
  if (res.rr_power > 0.0) {
    res.objective_ratio = res.dual_objective / res.rr_power;
  }
  res.objective_ok = res.objective_ratio >= eps - 1e-9;
  if (res.feasible && res.objective_ratio > 0.0) {
    res.implied_lk_ratio =
        std::pow(2.0 * res.gamma / res.objective_ratio, 1.0 / k);
  }

  obs::add("dualfit.certificates", 1);
  obs::add("dualfit.trace_intervals", trace_intervals);
  obs::add("dualfit.beta_pieces", beta_pieces.size());
  obs::add("dualfit.feasibility_checks", feasibility_checks);
  return res;
}

}  // namespace tempofair::analysis
