// Competitive-ratio estimation.
//
// The competitive ratio of a policy at speed s for the l_k norm is
// sup over instances of  cost_s(policy) / OPT_1,  with OPT measured at speed
// 1.  OPT is intractable, so each measurement reports a *bracket*:
//
//   ratio_vs_proxy = cost / proxy   (proxy >= OPT  =>  an UNDER-estimate)
//   ratio_vs_lb    = cost / lb      (lb <= OPT     =>  an OVER-estimate)
//
// The true ratio lies in [ratio_vs_proxy, ratio_vs_lb].  Experiments report
// both; "O(1)-competitive" shows up as ratio_vs_lb staying bounded as the
// instance family grows, and "not O(1)" as ratio_vs_proxy growing.
#pragma once

#include <string>

#include "core/instance.h"
#include "core/policy.h"
#include "lpsolve/lower_bounds.h"

namespace tempofair::analysis {

struct RatioMeasurement {
  std::string policy;
  double k = 2.0;
  int machines = 1;
  double speed = 1.0;
  double cost_power = 0.0;     ///< sum_j F_j^k under the policy at `speed`
  double cost_norm = 0.0;      ///< l_k norm of the policy's flows
  lpsolve::OptBounds bounds;   ///< OPT^k bracket (speed 1)
  /// (cost_power / lb)^(1/k) against the *certified* lower bound when one is
  /// available (bounds.lb_certified), else against the float best_lb.
  double ratio_vs_lb = 0.0;
  double ratio_vs_proxy = 0.0; ///< (cost_power / proxy_ub)^(1/k)
  /// True iff ratio_vs_lb's denominator is backed by an exact-rational
  /// certificate; experiments report this next to every ratio_vs_lb.
  bool lb_certified = false;
  /// True when the lower-bound denominator was zero, denormal, or
  /// non-finite.  ratio_vs_lb is left 0 in that case and must not be
  /// consumed: dividing by such a denominator would silently turn the ratio
  /// into inf/nan (and poison anything optimizing over it, e.g. the
  /// adversary search, which skips lb-degenerate instances).
  bool lb_degenerate = false;
};

struct RatioOptions {
  double k = 2.0;
  int machines = 1;
  double speed = 1.0;
  bool with_lp = true;      ///< include the LP lower bound
  double lp_slot = 0.0;     ///< see OptBoundsOptions
};

/// Simulates `policy` at `speed` and brackets its l_k competitive ratio.
[[nodiscard]] RatioMeasurement measure_ratio(const Instance& instance,
                                             Policy& policy,
                                             const RatioOptions& options);

/// Same but reuses precomputed OPT bounds (for sweeps over many speeds or
/// policies on one instance).
[[nodiscard]] RatioMeasurement measure_ratio(const Instance& instance,
                                             Policy& policy,
                                             const RatioOptions& options,
                                             const lpsolve::OptBounds& bounds);

}  // namespace tempofair::analysis
