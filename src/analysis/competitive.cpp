#include "analysis/competitive.h"

#include <cmath>
#include <limits>

#include "core/engine.h"
#include "core/metrics.h"

namespace tempofair::analysis {

RatioMeasurement measure_ratio(const Instance& instance, Policy& policy,
                               const RatioOptions& options,
                               const lpsolve::OptBounds& bounds) {
  EngineOptions eng;
  eng.machines = options.machines;
  eng.speed = options.speed;
  eng.record_trace = false;

  // Ratio sweeps simulate the same policies over many instances; a reusable
  // engine core keeps its alive-set buffers warm across calls.
  static thread_local EngineCore core;
  const Schedule sched = core.run(instance, policy, eng);

  RatioMeasurement m;
  m.policy = std::string(policy.name());
  m.k = options.k;
  m.machines = options.machines;
  m.speed = options.speed;
  m.cost_power = flow_lk_power(sched, options.k);
  m.cost_norm = flow_lk_norm(sched, options.k);
  m.bounds = bounds;
  m.lb_certified = bounds.lb_certified;
  const double lb = bounds.lb_certified ? bounds.certified_lb : bounds.best_lb;
  // A zero, denormal, or non-finite lower bound has no meaningful ratio:
  // cost / lb would round to inf (or nan) and look like an unboundedly bad
  // instance.  Flag it instead of reporting a poisoned ratio.
  if (std::isfinite(lb) && lb >= std::numeric_limits<double>::min()) {
    m.ratio_vs_lb = std::pow(m.cost_power / lb, 1.0 / options.k);
  } else {
    m.lb_degenerate = true;
  }
  if (bounds.proxy_ub > 0.0) {
    m.ratio_vs_proxy = std::pow(m.cost_power / bounds.proxy_ub, 1.0 / options.k);
  }
  return m;
}

RatioMeasurement measure_ratio(const Instance& instance, Policy& policy,
                               const RatioOptions& options) {
  lpsolve::OptBoundsOptions bopts;
  bopts.k = options.k;
  bopts.machines = options.machines;
  bopts.with_lp = options.with_lp;
  bopts.lp_slot = options.lp_slot;
  return measure_ratio(instance, policy, options,
                       lpsolve::opt_bounds(instance, bopts));
}

}  // namespace tempofair::analysis
