#include "analysis/report.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace tempofair::analysis {

Table::Table(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {
  if (columns_.empty()) throw std::invalid_argument("Table: no columns");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != columns_.size()) {
    throw std::invalid_argument("Table::add_row: cell count != column count");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v) {
  if (std::isnan(v)) return "nan";
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  std::ostringstream os;
  os << std::setprecision(4) << v;
  return os.str();
}

std::string Table::num(double v, int decimals) {
  if (std::isnan(v)) return "nan";
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << v;
  return os.str();
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> width(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) width[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::size_t total = 0;
  for (std::size_t w : width) total += w + 2;

  out << "\n== " << title_ << " ==\n";
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    out << std::left << std::setw(static_cast<int>(width[c]) + 2) << columns_[c];
  }
  out << '\n' << std::string(total, '-') << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << std::left << std::setw(static_cast<int>(width[c]) + 2) << row[c];
    }
    out << '\n';
  }
  out.flush();
}

void Table::print_csv(std::ostream& out) const {
  auto emit = [&out](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) out << ',';
      out << cells[c];
    }
    out << '\n';
  };
  emit(columns_);
  for (const auto& row : rows_) emit(row);
  out.flush();
}

}  // namespace tempofair::analysis
