// Dual-fitting verifier: a machine-checked certificate of the paper's proof
// (Sections 3.2-3.4) on concrete Round Robin schedules.
//
// Given the schedule produced by RR at speed eta on m machines, the verifier
// constructs the paper's dual variables in closed form:
//
//   alpha_j = sum over trace intervals I subset [r_j, C_j]:
//       if I is overloaded (n_t >= m):
//           sum_{j' in A(t, r_j)} integral_I k (t - r_{j'})^{k-1} / n_t dt
//           (A(t, r_j): alive jobs that arrived no later than j under the
//            strict order (release, id); includes j itself)
//       if I is underloaded (n_t < m):
//           integral_I k (t - r_j)^{k-1} dt
//     minus  eps * F_j^k
//
//   beta_t  = (1/2 - 3 eps) / m * sum_j 1[t in [r_j, C_j + delta F_j]]
//             * F_j^{k-1},      with delta = eps
//
// (The 1/m scaling makes the dual objective term m * integral beta_t dt equal
// (1+delta)(1/2-3eps) RR^k exactly as in Lemma 2; on one machine it matches
// the paper's formula verbatim.)
//
// It then checks, numerically and exactly (all integrals in closed form over
// the piecewise-constant trace):
//   * Lemma 1:  sum_j alpha_j >= (1/2 - eps) RR^k
//   * Lemma 2:  m * integral beta_t dt <= (1/2 - 2 eps) RR^k
//   * Dual feasibility (Lemmas 3-4 combined): for every job j and every time
//     t >= r_j,   alpha_j / p_j <= gamma ((t-r_j)^k + p_j^k) / p_j + beta_t,
//     with gamma = k (k/eps)^k.  beta is piecewise constant and the rest of
//     the right side is nondecreasing in t, so checking the left endpoint of
//     every beta-piece is exhaustive.
//   * Dual objective  sum alpha - m integral beta  >=  eps * RR^k  (this is
//     what Theorem 1 needs; RR^k = sum_j F_j^k).
//
// A feasible certificate implies, by weak LP duality, RR^k <= (2 gamma /
// objective_ratio) * OPT^k, i.e. an l_k-norm competitive ratio of
// (2 gamma / objective_ratio)^{1/k} at the simulated speed -- the verifier
// reports this implied bound.
//
// Note Lemma 4's final step needs eta (1/2 - 3 eps) >= k, i.e.
// (1+10eps)(1-6eps) >= 1, which holds for eps <= 1/15; use eps <= 1/15 when
// a passing certificate is expected at exactly eta = 2k(1+10 eps).
#pragma once

#include "core/schedule.h"

namespace tempofair::analysis {

struct DualFitOptions {
  double k = 2.0;      ///< l_k exponent (>= 1)
  double eps = 0.05;   ///< the analysis' epsilon, in (0, 1/10]
  /// Override gamma; 0 = the paper's k*(k/eps)^k.
  double gamma = 0.0;
};

struct DualFitResult {
  double k = 0.0;
  double eps = 0.0;
  double delta = 0.0;
  double gamma = 0.0;
  double speed = 0.0;  ///< speed the schedule was simulated at
  int machines = 1;

  double rr_power = 0.0;       ///< RR^k = sum_j F_j^k
  double alpha_sum = 0.0;      ///< sum_j alpha_j
  double beta_term = 0.0;      ///< m * integral beta_t dt
  double dual_objective = 0.0; ///< alpha_sum - beta_term

  bool lemma1_ok = false;      ///< alpha_sum >= (1/2 - eps) RR^k
  bool lemma2_ok = false;      ///< beta_term <= (1/2 - 2 eps) RR^k
  /// Lemmas 1-2 rechecked in exact rational arithmetic at the computed
  /// double values, with *no* tolerance.  A certificate with lemma*_ok true
  /// but lemmas_exact false only passed by the float slack.
  bool lemmas_exact = false;
  double min_slack = 0.0;      ///< min over (job, beta piece) of RHS - LHS
  /// Worst violation normalized by the constraint's own scale; 0 = feasible.
  double max_relative_violation = 0.0;
  bool feasible = false;

  double objective_ratio = 0.0;       ///< dual_objective / rr_power
  bool objective_ok = false;          ///< objective_ratio >= eps (to 1e-9)
  /// (2 gamma / objective_ratio)^{1/k}: the implied l_k competitive ratio at
  /// this speed, valid when feasible && objective_ratio > 0.
  double implied_lk_ratio = 0.0;

  /// Everything Theorem 1 requires of the construction.
  [[nodiscard]] bool certificate_valid() const noexcept {
    return lemma1_ok && lemma2_ok && feasible && objective_ok;
  }
};

/// Runs the verifier on a schedule (must have a recorded trace).
/// The schedule should come from RoundRobin for the theorem's guarantees to
/// apply, but any traced schedule is accepted -- the checks then report
/// whether the construction happens to work for it.
[[nodiscard]] DualFitResult dual_fit_certificate(const Schedule& schedule,
                                                 const DualFitOptions& options);

/// The speed Theorem 1 prescribes: eta = 2k(1 + 10 eps).
[[nodiscard]] inline double theorem1_speed(double k, double eps) noexcept {
  return 2.0 * k * (1.0 + 10.0 * eps);
}

}  // namespace tempofair::analysis
