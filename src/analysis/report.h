// Plain-text table / CSV writers used by the experiment binaries.
//
// Every experiment prints a titled, column-aligned table to stdout; `--csv`
// switches the payload to machine-readable CSV with the same columns.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace tempofair::analysis {

class Table {
 public:
  Table(std::string title, std::vector<std::string> columns);

  /// Adds one row; must match the column count.
  void add_row(std::vector<std::string> cells);

  /// Formats a double compactly (4 significant digits, "inf"/"nan" spelled).
  [[nodiscard]] static std::string num(double v);
  /// Formats with fixed decimals.
  [[nodiscard]] static std::string num(double v, int decimals);

  /// Column-aligned human-readable rendering with title and rule lines.
  void print(std::ostream& out) const;
  /// CSV rendering (header + rows, no title).
  void print_csv(std::ostream& out) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] const std::string& title() const noexcept { return title_; }

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tempofair::analysis
