#include "lpsolve/mincost_flow.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <stdexcept>

namespace tempofair::lpsolve {

MinCostFlow::MinCostFlow(std::size_t num_nodes) : graph_(num_nodes) {}

std::size_t MinCostFlow::add_edge(std::size_t u, std::size_t v, double cap,
                                  double cost) {
  if (u >= graph_.size() || v >= graph_.size()) {
    throw std::invalid_argument("MinCostFlow::add_edge: node out of range");
  }
  if (cap < 0.0 || cost < 0.0 || !std::isfinite(cap) || !std::isfinite(cost)) {
    throw std::invalid_argument(
        "MinCostFlow::add_edge: capacity and cost must be finite and >= 0");
  }
  graph_[u].push_back(Edge{v, graph_[v].size(), cap, cost, true});
  graph_[v].push_back(Edge{u, graph_[u].size() - 1, 0.0, -cost, false});
  handles_.emplace_back(u, graph_[u].size() - 1);
  initial_cap_.push_back(cap);
  max_cost_ = std::max(max_cost_, cost);
  return handles_.size() - 1;
}

MinCostFlow::Result MinCostFlow::solve(std::size_t s, std::size_t t,
                                       double max_flow) {
  if (s >= graph_.size() || t >= graph_.size() || s == t) {
    throw std::invalid_argument("MinCostFlow::solve: bad source/sink");
  }
  const std::size_t n = graph_.size();
  constexpr double kInf = std::numeric_limits<double>::infinity();

  // Tolerances must scale with the cost magnitude: with costs spanning many
  // orders of magnitude (the flow-time LP's k-th-power costs do), fixed
  // absolute epsilons let floating-point noise turn reduced costs negative,
  // which degrades Dijkstra into exponential re-expansion.
  const double cost_eps = std::max(kFlowEps, 1e-12 * max_cost_);

  potential_.assign(n, 0.0);  // costs are >= 0, so 0 is valid
  std::vector<double>& potential = potential_;
  std::vector<double> dist(n);
  std::vector<std::size_t> prev_node(n), prev_edge(n);
  Result result;

  using QItem = std::pair<double, std::size_t>;  // (dist, node)

  std::size_t edge_count = 0;
  for (const auto& adj : graph_) edge_count += adj.size();
  const std::size_t max_augmentations = 100 * (edge_count + n) + 1000;
  std::size_t augmentations = 0;

  while (result.flow < max_flow - kFlowEps) {
    if (++augmentations > max_augmentations) {
      throw std::runtime_error(
          "MinCostFlow::solve: augmentation budget exhausted (numerically "
          "degenerate instance)");
    }
    // Dijkstra on reduced costs.
    std::fill(dist.begin(), dist.end(), kInf);
    dist[s] = 0.0;
    std::priority_queue<QItem, std::vector<QItem>, std::greater<>> pq;
    pq.emplace(0.0, s);
    while (!pq.empty()) {
      const auto [d, u] = pq.top();
      pq.pop();
      if (d > dist[u] + cost_eps) continue;
      for (std::size_t ei = 0; ei < graph_[u].size(); ++ei) {
        const Edge& e = graph_[u][ei];
        if (e.cap <= kFlowEps) continue;
        // Clamp tiny negative reduced costs (float noise) to preserve
        // Dijkstra's monotonicity invariant.
        const double reduced =
            std::max(e.cost + potential[u] - potential[e.to], 0.0);
        const double nd = d + reduced;
        if (nd < dist[e.to] - cost_eps) {
          dist[e.to] = nd;
          prev_node[e.to] = u;
          prev_edge[e.to] = ei;
          pq.emplace(nd, e.to);
        }
      }
    }
    if (dist[t] == kInf) break;  // no augmenting path left

    // Cap every update at dist[t]: unlike the naive "reachable-only" update,
    // this keeps reduced costs nonnegative on *every* residual arc (also ones
    // touching nodes this Dijkstra never reached), so the final potentials
    // are a valid -- and tight -- dual solution, not just a Dijkstra speedup.
    for (std::size_t v = 0; v < n; ++v) {
      potential[v] += std::min(dist[v], dist[t]);
    }

    // Bottleneck along the path.
    double push = max_flow - result.flow;
    for (std::size_t v = t; v != s; v = prev_node[v]) {
      push = std::min(push, graph_[prev_node[v]][prev_edge[v]].cap);
    }
    if (push <= kFlowEps) break;  // numerically exhausted

    for (std::size_t v = t; v != s; v = prev_node[v]) {
      Edge& e = graph_[prev_node[v]][prev_edge[v]];
      e.cap -= push;
      graph_[e.to][e.rev].cap += push;
      result.cost += push * e.cost;
    }
    result.flow += push;
  }
  return result;
}

double MinCostFlow::flow_on(std::size_t handle) const {
  if (handle >= handles_.size()) {
    throw std::invalid_argument("MinCostFlow::flow_on: bad handle");
  }
  const auto [u, idx] = handles_[handle];
  return initial_cap_[handle] - graph_[u][idx].cap;
}

}  // namespace tempofair::lpsolve
