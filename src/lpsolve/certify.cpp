#include "lpsolve/certify.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "obs/obs.h"

namespace tempofair::lpsolve {

namespace {

/// Exact dense tableau over [structural | slack | artificial] columns.
struct ExactTableau {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<std::vector<Rational>> a;  // rows x cols
  std::vector<Rational> b;
  std::vector<std::size_t> basis;
  bool overflow = false;

  void pivot(std::size_t r, std::size_t c) {
    const Rational p = a[r][c];
    for (std::size_t j = 0; j < cols; ++j) {
      a[r][j] = a[r][j] / p;
      if (!a[r][j].valid()) overflow = true;
    }
    b[r] = b[r] / p;
    if (!b[r].valid()) overflow = true;
    for (std::size_t i = 0; i < rows; ++i) {
      if (i == r) continue;
      const Rational f = a[i][c];
      if (f.is_zero()) continue;
      for (std::size_t j = 0; j < cols; ++j) {
        a[i][j] = a[i][j] - f * a[r][j];
        if (!a[i][j].valid()) overflow = true;
      }
      b[i] = b[i] - f * b[r];
      if (!b[i].valid()) overflow = true;
    }
    basis[r] = c;
  }

  [[nodiscard]] Rational objective(const std::vector<Rational>& c) const {
    Rational obj;
    for (std::size_t i = 0; i < rows; ++i) obj += c[basis[i]] * b[i];
    return obj;
  }
};

/// Bland's rule in exact arithmetic: lowest-index entering column with a
/// strictly negative reduced cost, minimum-ratio leaving row with
/// lowest-basis-index tie break.  Cannot cycle; the pivot cap only guards
/// pathological sizes.
SolveStatus run_exact_simplex(ExactTableau& t, const std::vector<Rational>& c,
                              const std::vector<bool>& allowed,
                              std::size_t max_pivots, std::size_t& pivots) {
  std::vector<Rational> y(t.rows);
  while (true) {
    if (t.overflow) return SolveStatus::kIterLimit;
    // Reduced cost z_j = c_j - sum_i c_basis[i] * a[i][j]; scan columns in
    // index order and take the first negative one (Bland).
    std::size_t enter = t.cols;
    for (std::size_t j = 0; j < t.cols && enter == t.cols; ++j) {
      if (!allowed[j]) continue;
      Rational z = c[j];
      for (std::size_t i = 0; i < t.rows; ++i) {
        if (!c[t.basis[i]].is_zero()) z -= c[t.basis[i]] * t.a[i][j];
      }
      if (!z.valid()) {
        t.overflow = true;
        return SolveStatus::kIterLimit;
      }
      if (z.is_negative()) enter = j;
    }
    if (enter == t.cols) return SolveStatus::kOptimal;

    std::size_t leave = t.rows;
    Rational best_ratio;
    for (std::size_t i = 0; i < t.rows; ++i) {
      if (!t.a[i][enter].is_positive()) continue;
      const Rational ratio = t.b[i] / t.a[i][enter];
      if (!ratio.valid()) {
        t.overflow = true;
        return SolveStatus::kIterLimit;
      }
      if (leave == t.rows || ratio < best_ratio ||
          (ratio == best_ratio && t.basis[i] < t.basis[leave])) {
        best_ratio = ratio;
        leave = i;
      }
    }
    if (leave == t.rows) return SolveStatus::kUnbounded;
    t.pivot(leave, enter);
    if (++pivots > max_pivots) return SolveStatus::kIterLimit;
  }
}

struct ExactData {
  StandardForm sf;                          // double standard form (layout)
  std::vector<std::vector<Rational>> a;     // rows x (n + slacks), exact
  std::vector<Rational> b;
  std::vector<Rational> c;                  // phase-2 costs, length cols
  bool overflow = false;
};

ExactData build_exact(const LinearProgram& lp) {
  ExactData d;
  d.sf = standardize(lp);
  d.a.assign(d.sf.rows, std::vector<Rational>(d.sf.n + d.sf.slacks));
  d.b.assign(d.sf.rows, Rational());
  d.c.assign(d.sf.cols, Rational());
  for (std::size_t i = 0; i < d.sf.rows; ++i) {
    for (std::size_t j = 0; j < d.sf.n + d.sf.slacks; ++j) {
      d.a[i][j] = Rational::from_double(d.sf.a[i][j]);
      if (!d.a[i][j].valid()) d.overflow = true;
    }
    d.b[i] = Rational::from_double(d.sf.b[i]);
    if (!d.b[i].valid()) d.overflow = true;
  }
  for (std::size_t j = 0; j < d.sf.n; ++j) {
    d.c[j] = Rational::from_double(lp.objective[j]);
    if (!d.c[j].valid()) d.overflow = true;
  }
  return d;
}

ExactTableau fresh_tableau(const ExactData& d) {
  ExactTableau t;
  t.rows = d.sf.rows;
  t.cols = d.sf.cols;
  t.a.assign(t.rows, std::vector<Rational>(t.cols));
  t.b = d.b;
  t.basis.assign(t.rows, 0);
  for (std::size_t i = 0; i < t.rows; ++i) {
    for (std::size_t j = 0; j < d.sf.n + d.sf.slacks; ++j) t.a[i][j] = d.a[i][j];
    t.a[i][d.sf.artificial(i)] = Rational::from_int(1);
    t.basis[i] = d.sf.artificial(i);
  }
  return t;
}

/// Replays the float basis on a fresh exact tableau.  Returns false when the
/// basis turns out exactly singular or exactly primal-infeasible (then the
/// caller falls back to the full two-phase exact solve).
bool warm_start(ExactTableau& t, const std::vector<std::size_t>& target) {
  if (target.size() != t.rows) return false;
  for (const std::size_t col : target) {
    if (col >= t.cols) return false;
  }
  std::vector<bool> done(t.rows, false);
  std::size_t remaining = t.rows;
  bool progress = true;
  while (remaining > 0 && progress) {
    progress = false;
    for (std::size_t i = 0; i < t.rows; ++i) {
      if (done[i] || t.basis[i] == target[i]) {
        if (!done[i] && t.basis[i] == target[i]) {
          done[i] = true;
          --remaining;
          progress = true;
        }
        continue;
      }
      if (!t.a[i][target[i]].is_zero()) {
        t.pivot(i, target[i]);
        if (t.overflow) return false;
        done[i] = true;
        --remaining;
        progress = true;
      }
    }
  }
  if (remaining > 0) return false;
  for (const Rational& bi : t.b) {
    if (bi.is_negative()) return false;  // exactly primal-infeasible basis
  }
  return true;
}

/// Runs the exact two-phase simplex from scratch.  Returns the terminal
/// status with the tableau at the phase-2 optimum when kOptimal.
SolveStatus full_exact_solve(const ExactData& d, ExactTableau& t,
                             std::size_t max_pivots, std::size_t& pivots) {
  t = fresh_tableau(d);
  std::vector<Rational> c1(d.sf.cols);
  for (std::size_t i = 0; i < d.sf.rows; ++i) {
    c1[d.sf.artificial(i)] = Rational::from_int(1);
  }
  std::vector<bool> allowed(d.sf.cols, true);
  SolveStatus st = run_exact_simplex(t, c1, allowed, max_pivots, pivots);
  if (st == SolveStatus::kUnbounded) return SolveStatus::kIterLimit;  // impossible
  if (st != SolveStatus::kOptimal) return st;
  const Rational phase1 = t.objective(c1);
  if (!phase1.valid()) return SolveStatus::kIterLimit;
  if (phase1.is_positive()) return SolveStatus::kInfeasible;
  // Drive artificials stuck at zero out of the basis where possible;
  // leftover rows are exactly redundant and harmless.
  for (std::size_t i = 0; i < d.sf.rows; ++i) {
    if (t.basis[i] >= d.sf.n + d.sf.slacks) {
      for (std::size_t j = 0; j < d.sf.n + d.sf.slacks; ++j) {
        if (!t.a[i][j].is_zero()) {
          t.pivot(i, j);
          break;
        }
      }
    }
  }
  std::vector<bool> allowed2(d.sf.cols, true);
  for (std::size_t j = d.sf.n + d.sf.slacks; j < d.sf.cols; ++j) {
    allowed2[j] = false;
  }
  return run_exact_simplex(t, d.c, allowed2, max_pivots, pivots);
}

/// Independent verification against a *fresh* conversion of the original
/// data: primal feasibility of the basic solution, dual feasibility of y,
/// and weak duality (y.b == c.x at the optimal basis).  Guards the pivoting
/// machinery itself.
bool verify_optimal_pair(const ExactData& d, const ExactTableau& t,
                         const std::vector<Rational>& y,
                         const Rational& primal_obj, const Rational& dual_obj) {
  const std::size_t width = d.sf.n + d.sf.slacks;
  // Recover the full standard-form solution vector from the basis.
  std::vector<Rational> x(width);
  for (std::size_t i = 0; i < t.rows; ++i) {
    if (t.basis[i] < width) {
      x[t.basis[i]] = t.b[i];
    } else if (!t.b[i].is_zero()) {
      return false;  // artificial basic at a nonzero value
    }
  }
  for (const Rational& xi : x) {
    if (!xi.valid() || xi.is_negative()) return false;
  }
  // A x == b, row by row.
  for (std::size_t i = 0; i < t.rows; ++i) {
    Rational lhs;
    for (std::size_t j = 0; j < width; ++j) {
      if (!x[j].is_zero() && !d.a[i][j].is_zero()) lhs += d.a[i][j] * x[j];
    }
    if (!(lhs == d.b[i])) return false;
  }
  // Dual feasibility: c_j - y.A_j >= 0 over structural and slack columns
  // (slack columns encode the row-sign constraints on y).
  for (std::size_t j = 0; j < width; ++j) {
    Rational z = d.c[j];
    for (std::size_t i = 0; i < t.rows; ++i) {
      if (!y[i].is_zero() && !d.a[i][j].is_zero()) z -= y[i] * d.a[i][j];
    }
    if (!z.valid() || z.is_negative()) return false;
  }
  // Weak duality, tight at the optimal basis: y.b == c.x.
  return primal_obj.valid() && dual_obj.valid() && primal_obj == dual_obj;
}

}  // namespace

CertifyResult solve_lp_exact(const LinearProgram& lp, const LpSolution* warm,
                             const CertifyOptions& options) {
  CertifyResult out;
  out.exact_objective = Rational::invalid();
  const ExactData d = build_exact(lp);
  if (d.overflow) {
    out.overflow = true;
    return out;
  }

  ExactTableau t;
  bool have_basis = false;
  if (warm != nullptr && warm->status == SolveStatus::kOptimal &&
      warm->basis.size() == d.sf.rows) {
    t = fresh_tableau(d);
    if (warm_start(t, warm->basis)) {
      std::vector<bool> allowed(d.sf.cols, true);
      for (std::size_t j = d.sf.n + d.sf.slacks; j < d.sf.cols; ++j) {
        allowed[j] = false;
      }
      const SolveStatus st =
          run_exact_simplex(t, d.c, allowed, options.max_pivots, out.pivots);
      if (st == SolveStatus::kOptimal && !t.overflow) {
        // A warm-started run never ran exact phase 1; require every
        // artificial basic variable to sit exactly at zero, else fall back.
        bool clean = true;
        for (std::size_t i = 0; i < t.rows; ++i) {
          if (t.basis[i] >= d.sf.n + d.sf.slacks && !t.b[i].is_zero()) {
            clean = false;
          }
        }
        if (clean) {
          out.exact_status = SolveStatus::kOptimal;
          out.warm_start_used = true;
          have_basis = true;
        }
      } else if (st == SolveStatus::kUnbounded && !t.overflow) {
        out.exact_status = SolveStatus::kUnbounded;
        return out;
      }
    }
  }

  if (!have_basis) {
    out.warm_start_used = false;
    out.exact_status =
        full_exact_solve(d, t, options.max_pivots, out.pivots);
    if (t.overflow) {
      out.overflow = true;
      out.exact_status = SolveStatus::kIterLimit;
      return out;
    }
    if (out.exact_status != SolveStatus::kOptimal) return out;
  }

  // Duals from the final tableau: artificial column i holds B^{-1} e_i.
  std::vector<Rational> y(t.rows);
  for (std::size_t i = 0; i < t.rows; ++i) {
    Rational yi;
    for (std::size_t r = 0; r < t.rows; ++r) {
      if (!d.c[t.basis[r]].is_zero()) {
        yi += d.c[t.basis[r]] * t.a[r][d.sf.artificial(i)];
      }
    }
    y[i] = yi;
  }
  Rational dual_obj;
  for (std::size_t i = 0; i < t.rows; ++i) dual_obj += y[i] * d.b[i];
  const Rational primal_obj = t.objective(d.c);

  if (!verify_optimal_pair(d, t, y, primal_obj, dual_obj)) {
    out.overflow = t.overflow;
    out.exact_status = SolveStatus::kIterLimit;
    return out;
  }

  out.exact_objective = primal_obj;
  out.bound.value = dual_obj.lower_double();
  out.bound.certified = true;
  out.duals.resize(t.rows);
  for (std::size_t i = 0; i < t.rows; ++i) {
    // Un-apply the rhs sign normalization: dual of the original row.
    out.duals[i] = d.sf.row_sign[i] * y[i].to_double();
  }
  return out;
}

CertifiedBound verify_certificate(const LinearProgram& lp,
                                  const LpSolution& solution,
                                  const CertifyOptions& options) {
  if (solution.status != SolveStatus::kOptimal) {
    obs::add("lpcert.uncertified", 1);
    return CertifiedBound{};
  }
  const CertifyResult r = solve_lp_exact(lp, &solution, options);
  if (r.exact_status != SolveStatus::kOptimal || !r.bound.certified) {
    obs::add("lpcert.uncertified", 1);
    return CertifiedBound{solution.objective.value_or(0.0), false};
  }
  obs::add("lpcert.certified", 1);
  return r.bound;
}

}  // namespace tempofair::lpsolve
