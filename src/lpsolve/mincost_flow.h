// Min-cost max-flow with real-valued capacities and costs.
//
// Successive shortest augmenting paths with Johnson potentials (Dijkstra per
// augmentation).  Costs must be nonnegative on original edges; capacities and
// flow amounts are doubles with epsilon hygiene (residuals below kFlowEps are
// treated as saturated).  This is the exact solver behind the discretized
// flow-time LP of Section 3.1 -- a pure transportation problem, for which SSP
// terminates after at most O(E) saturations per phase in practice.
#pragma once

#include <cstddef>
#include <vector>

namespace tempofair::lpsolve {

inline constexpr double kFlowEps = 1e-9;

class MinCostFlow {
 public:
  explicit MinCostFlow(std::size_t num_nodes);

  /// Adds a directed edge u -> v; returns its handle for flow queries.
  /// Requires cap >= 0 and cost >= 0 (SSP with potentials needs nonnegative
  /// reduced costs; our LPs have nonnegative costs natively).
  std::size_t add_edge(std::size_t u, std::size_t v, double cap, double cost);

  struct Result {
    double flow = 0.0;
    double cost = 0.0;
  };

  /// Sends up to `max_flow` units from s to t along successive shortest
  /// paths; returns achieved flow and its total cost.
  Result solve(std::size_t s, std::size_t t, double max_flow);

  /// Flow currently on edge `handle` (after solve()).
  [[nodiscard]] double flow_on(std::size_t handle) const;

  /// Johnson potentials after solve(): potentials()[v] is the shortest-path
  /// distance from the source to v in the final residual network.  These are
  /// (approximate) optimal duals of the underlying transportation LP, which
  /// the flow-time certificate pass repairs into an exactly-feasible dual.
  [[nodiscard]] const std::vector<double>& potentials() const noexcept {
    return potential_;
  }

  [[nodiscard]] std::size_t num_nodes() const noexcept { return graph_.size(); }

 private:
  struct Edge {
    std::size_t to;
    std::size_t rev;  // index of reverse edge in graph_[to]
    double cap;       // residual capacity
    double cost;
    bool original;    // true for user-added edges
  };

  std::vector<std::vector<Edge>> graph_;
  std::vector<std::pair<std::size_t, std::size_t>> handles_;  // (node, idx)
  std::vector<double> initial_cap_;                           // per handle
  std::vector<double> potential_;                             // after solve()
  double max_cost_ = 0.0;
};

}  // namespace tempofair::lpsolve
