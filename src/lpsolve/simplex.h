// Dense two-phase primal simplex for small linear programs.
//
// Used by the test suite and experiment T8 to cross-validate the min-cost
// flow solver on the discretized flow-time LP, and to demonstrate weak
// duality for the paper's dual-fitting certificates on small instances.
// Not intended for large LPs (dense tableau, O(rows * cols) per pivot).
//
// Hardening: Dantzig pricing with a single entering tolerance, plus a
// stall detector that switches to Bland's rule after a run of degenerate
// pivots, so cycling instances (Beale's example) terminate at the optimum
// instead of burning the iteration budget.  Optimal solutions carry the
// final basis and the dual vector, which `verify_certificate()` (certify.h)
// re-derives and checks in exact rational arithmetic.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

namespace tempofair::lpsolve {

/// min objective . x   subject to   rows,   x >= 0.
struct LinearProgram {
  enum class Rel { kLe, kGe, kEq };
  struct Row {
    std::vector<double> coeffs;
    Rel rel = Rel::kLe;
    double rhs = 0.0;
  };

  std::vector<double> objective;
  std::vector<Row> rows;

  [[nodiscard]] std::size_t num_vars() const noexcept { return objective.size(); }
};

enum class SolveStatus { kOptimal, kInfeasible, kUnbounded, kIterLimit };

struct LpSolution {
  SolveStatus status = SolveStatus::kIterLimit;
  /// Engaged only when status == kOptimal; a non-optimal solve carries no
  /// objective at all, so callers cannot misread a miss as a bound of 0.
  std::optional<double> objective;
  std::vector<double> x;
  /// Dual value per *original* row (kOptimal only): >= 0 for kGe rows,
  /// <= 0 for kLe rows, free for kEq.  The dual objective sum_i duals[i] *
  /// rhs[i] equals the primal objective up to float error.
  std::vector<double> duals;
  /// Final basis: one standard-form column index per row (kOptimal only).
  /// Column layout is the StandardForm one; input to verify_certificate().
  std::vector<std::size_t> basis;
};

/// The standardized equality form shared by the float simplex and the exact
/// certificate verifier: rows sign-normalized to rhs >= 0, columns laid out
/// as [structural | slack | artificial] (artificials are implicit identity
/// columns and not materialized in `a`).
struct StandardForm {
  std::size_t n = 0;       ///< structural variables
  std::size_t slacks = 0;  ///< one per inequality row
  std::size_t rows = 0;
  std::size_t cols = 0;    ///< n + slacks + rows
  std::vector<std::vector<double>> a;  ///< rows x (n + slacks)
  std::vector<double> b;               ///< >= 0
  std::vector<double> row_sign;        ///< +1/-1 applied to original row i

  [[nodiscard]] std::size_t artificial(std::size_t row) const noexcept {
    return n + slacks + row;
  }
};

/// Builds the standard form deterministically from `lp`.  Throws
/// std::invalid_argument on dimension mismatches.
[[nodiscard]] StandardForm standardize(const LinearProgram& lp);

/// Solves the LP.  Throws std::invalid_argument on dimension mismatches.
[[nodiscard]] LpSolution solve_lp(const LinearProgram& lp,
                                  std::size_t max_iters = 100'000);

}  // namespace tempofair::lpsolve
