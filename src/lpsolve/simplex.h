// Dense two-phase primal simplex for small linear programs.
//
// Used by the test suite and experiment T8 to cross-validate the min-cost
// flow solver on the discretized flow-time LP, and to demonstrate weak
// duality for the paper's dual-fitting certificates on small instances.
// Not intended for large LPs (dense tableau, O(rows * cols) per pivot).
#pragma once

#include <cstddef>
#include <vector>

namespace tempofair::lpsolve {

/// min objective . x   subject to   rows,   x >= 0.
struct LinearProgram {
  enum class Rel { kLe, kGe, kEq };
  struct Row {
    std::vector<double> coeffs;
    Rel rel = Rel::kLe;
    double rhs = 0.0;
  };

  std::vector<double> objective;
  std::vector<Row> rows;

  [[nodiscard]] std::size_t num_vars() const noexcept { return objective.size(); }
};

enum class SolveStatus { kOptimal, kInfeasible, kUnbounded, kIterLimit };

struct LpSolution {
  SolveStatus status = SolveStatus::kIterLimit;
  double objective = 0.0;
  std::vector<double> x;
};

/// Solves the LP.  Throws std::invalid_argument on dimension mismatches.
[[nodiscard]] LpSolution solve_lp(const LinearProgram& lp,
                                  std::size_t max_iters = 100'000);

}  // namespace tempofair::lpsolve
