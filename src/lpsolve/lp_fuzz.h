// Differential fuzzing of the LP stack.
//
// Generates seeded random small LPs with dyadic coefficients and runs every
// solver we have against each other:
//
//   * the float two-phase simplex (simplex.h),
//   * the exact-rational solver (certify.h), warm-started from the float
//     basis so the warm-start path is exercised too,
//   * and, on scheduling-shaped cases, the min-cost-flow transportation
//     solver against the dense simplex on build_flowtime_lp(), with the
//     flow-side dual certificate rechecked exactly.
//
// Any status disagreement, objective mismatch beyond float tolerance, or
// certificate that claims a value above the exact optimum is recorded as a
// disagreement; CI runs >= 1000 cases and requires zero.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tempofair::lpsolve {

struct LpFuzzOptions {
  std::uint64_t seed = 20260806;
  std::size_t count = 1000;       ///< random dense LPs
  std::size_t max_vars = 6;
  std::size_t max_rows = 6;
  /// Every `flow_every`-th case additionally fuzzes the flow-time LP pair
  /// (MCMF vs dense simplex vs exact certificate); 0 disables.
  std::size_t flow_every = 8;
};

struct LpFuzzDisagreement {
  std::size_t case_index = 0;
  std::string what;
};

struct LpFuzzReport {
  std::uint64_t seed = 0;
  std::size_t count = 0;          ///< dense LP cases run
  std::size_t optimal = 0;        ///< float simplex optimal
  std::size_t infeasible = 0;
  std::size_t unbounded = 0;
  std::size_t iter_limit = 0;     ///< either side gave up (not a failure)
  std::size_t certified = 0;      ///< exact certificates issued
  std::size_t warm_starts = 0;    ///< exact solves that reused the float basis
  std::size_t flow_cases = 0;     ///< flow-time differential cases run
  std::vector<LpFuzzDisagreement> disagreements;

  [[nodiscard]] bool ok() const noexcept { return disagreements.empty(); }
};

/// Runs the differential fuzz; deterministic for a fixed options struct.
[[nodiscard]] LpFuzzReport run_lp_fuzz(const LpFuzzOptions& options);

}  // namespace tempofair::lpsolve
