// Exact-rational certificate verification for the LP layer.
//
// The float simplex (simplex.h) and the min-cost-flow solver behind the
// flow-time LP both terminate on tolerances, so their "lower bounds" are
// only as trustworthy as their epsilons.  Following the dual-fitting
// literature (a dual-feasible solution is a machine-checkable certificate of
// a bound), this module re-derives the dual vector from the float solver's
// final basis and re-checks dual feasibility plus weak duality in *exact*
// 128-bit rational arithmetic:
//
//   * solve_lp_exact() replays the LP in exact arithmetic with Bland's rule,
//     warm-started from the float basis (one or two cleanup pivots in the
//     common case; full two-phase fallback when the float basis is exactly
//     infeasible or singular);
//   * the optimal exact basis yields duals y with y.b == c.x exactly, and an
//     independent pass re-verifies primal feasibility (A x {<=,>=,=} b,
//     x >= 0) and dual feasibility (c_j - y.A_j >= 0, row-sign constraints)
//     against a fresh conversion of the original data;
//   * the certified value is y.b rounded *down* to a double, so the number
//     callers consume is guaranteed <= the true LP optimum.
//
// Any 128-bit overflow poisons the computation and yields certified = false
// (never a wrong bound).  All statuses are exact: kInfeasible means the
// exact phase-1 optimum is nonzero, kUnbounded means an exact ray exists.
#pragma once

#include <cstddef>
#include <vector>

#include "lpsolve/rational.h"
#include "lpsolve/simplex.h"

namespace tempofair::lpsolve {

/// A lower bound together with its verification status.  When `certified`
/// is true, `value` has been checked in exact rational arithmetic and
/// rounded toward the safe side; when false, `value` is whatever float
/// estimate was available (possibly 0) and must not be presented as exact.
struct CertifiedBound {
  double value = 0.0;
  bool certified = false;
};

struct CertifyOptions {
  /// Pivot budget for the exact solve.  Bland's rule terminates finitely;
  /// this caps pathological inputs.
  std::size_t max_pivots = 20'000;
};

struct CertifyResult {
  SolveStatus exact_status = SolveStatus::kIterLimit;
  /// Certified LP optimum (kOptimal only): bound.value <= exact optimum.
  CertifiedBound bound;
  /// The exact optimal objective (invalid unless kOptimal).
  Rational exact_objective;
  /// Exact duals per original row, rounded to nearest double (kOptimal only).
  std::vector<double> duals;
  bool warm_start_used = false;  ///< float basis reproduced without fallback
  bool overflow = false;         ///< 128-bit arithmetic overflowed
  std::size_t pivots = 0;        ///< exact pivots performed
};

/// Solves `lp` in exact rational arithmetic.  When `warm` carries an optimal
/// float solution, its final basis seeds the exact solve.  Throws
/// std::invalid_argument on dimension mismatches.
[[nodiscard]] CertifyResult solve_lp_exact(const LinearProgram& lp,
                                           const LpSolution* warm = nullptr,
                                           const CertifyOptions& options = {});

/// The certificate pass: takes the float solve's final basis, re-derives the
/// dual vector and re-checks dual feasibility plus weak duality exactly.
/// Returns an uncertified bound when `solution` is not optimal, the exact
/// replay disagrees, or the arithmetic overflows.
[[nodiscard]] CertifiedBound verify_certificate(const LinearProgram& lp,
                                                const LpSolution& solution,
                                                const CertifyOptions& options = {});

}  // namespace tempofair::lpsolve
