// Bounds on OPT's k-th-power flow time, used to bracket competitive ratios.
//
// Since OPT is intractable to compute exactly, every measured ratio is
// reported against both sides of a bracket:
//
//   cost / proxy_ub  <=  true competitive ratio  <=  cost / best_lb
//
// where best_lb <= OPT^k <= proxy_ub:
//  * trivial_lb:  sum_j p_j^k  (every flow is at least the job's size at
//    speed 1);
//  * lp_lb:       the Section 3.1 LP solved exactly, divided by 2;
//  * proxy_ub:    the measured cost of the best clairvoyant heuristic at
//    speed 1 (min over SRPT and SJF) -- a feasible schedule, hence >= OPT^k.
#pragma once

#include "core/instance.h"
#include "lpsolve/flowtime_lp.h"

namespace tempofair::lpsolve {

struct OptBounds {
  double k = 2.0;
  int machines = 1;
  double trivial_lb = 0.0;  ///< sum p_j^k
  double lp_lb = 0.0;       ///< LP / 2 (0 if LP skipped)
  double best_lb = 0.0;     ///< max of the lower bounds
  double proxy_ub = 0.0;    ///< min(SRPT, SJF) cost at speed 1
  /// Exactly-verified lower bound on OPT^k: the max over the components
  /// whose certificates checked out (the trivial bound re-derived in exact
  /// rational arithmetic for integer k, and the LP dual certificate / 2).
  /// Slightly below best_lb in general (safe-side rounding).
  double certified_lb = 0.0;
  /// True iff certified_lb > 0 is backed by an exact-rational certificate.
  /// When false, ratios against certified_lb must be flagged uncertified.
  bool lb_certified = false;
};

struct OptBoundsOptions {
  double k = 2.0;
  int machines = 1;
  /// Solve the LP lower bound (can be slow for large instances); the trivial
  /// bound and the proxy are always computed.
  bool with_lp = true;
  /// LP discretization width; 0 = auto (min(1, min_size), coarsened so the
  /// grid stays under ~4000 slots).
  double lp_slot = 0.0;
};

/// Computes the OPT^k bracket for `instance`.
[[nodiscard]] OptBounds opt_bounds(const Instance& instance,
                                   const OptBoundsOptions& options);

/// Exact-rational version of the trivial bound sum_j p_j^k for *integer*
/// k <= 8: each size is floored to a dyadic grid (a lower bound on p_j) and
/// raised to the k-th power exactly, so the rounded-down sum is a
/// machine-checked lower bound on sum_j p_j^k <= OPT^k.  Uncertified for
/// non-integer k or when 128-bit arithmetic would overflow.  Also the cheap
/// certified denominator the adversary search (src/search) screens with.
[[nodiscard]] CertifiedBound certified_trivial_bound(const Instance& instance,
                                                     double k);

}  // namespace tempofair::lpsolve
