#include "lpsolve/lower_bounds.h"

#include <algorithm>
#include <cmath>

#include "core/engine.h"
#include "core/metrics.h"
#include "policies/priority_policies.h"

namespace tempofair::lpsolve {

OptBounds opt_bounds(const Instance& instance, const OptBoundsOptions& options) {
  OptBounds out;
  out.k = options.k;
  out.machines = options.machines;

  for (const Job& j : instance.jobs()) {
    out.trivial_lb += std::pow(j.size, options.k);
  }

  if (options.with_lp && !instance.empty()) {
    double slot = options.lp_slot;
    if (slot <= 0.0) {
      slot = std::min(1.0, instance.min_size());
      const double horizon =
          instance.horizon_bound(options.machines, 1.0) - instance.min_release();
      // The grid dominates the MCMF cost (roughly slots x jobs edges and
      // slots+jobs augmentations); a coarser grid only loosens the lower
      // bound, never invalidates it.
      constexpr double kMaxSlots = 600.0;
      if (horizon / slot > kMaxSlots) slot = horizon / kMaxSlots;
    }
    FlowtimeLpOptions lp_opts;
    lp_opts.k = options.k;
    lp_opts.machines = options.machines;
    lp_opts.slot = slot;
    out.lp_lb = solve_flowtime_lp(instance, lp_opts).opt_power_lb;
  }
  out.best_lb = std::max(out.trivial_lb, out.lp_lb);

  EngineOptions eng;
  eng.machines = options.machines;
  eng.speed = 1.0;
  eng.record_trace = false;
  Srpt srpt;
  Sjf sjf;
  const double srpt_cost = flow_lk_power(simulate(instance, srpt, eng), options.k);
  const double sjf_cost = flow_lk_power(simulate(instance, sjf, eng), options.k);
  out.proxy_ub = std::min(srpt_cost, sjf_cost);
  return out;
}

}  // namespace tempofair::lpsolve
