#include "lpsolve/lower_bounds.h"

#include <algorithm>
#include <cmath>

#include "core/engine.h"
#include "core/metrics.h"
#include "lpsolve/rational.h"
#include "obs/obs.h"

namespace tempofair::lpsolve {

CertifiedBound certified_trivial_bound(const Instance& instance, double k) {
  CertifiedBound out;
  const double k_round = std::round(k);
  if (!(k >= 1.0) || k != k_round || k_round > 8.0) return out;
  const int ki = static_cast<int>(k_round);

  // Grid resolution: quantized sizes are raised to the k-th power, so the
  // bit budget shrinks with k to keep numerators inside 128 bits.
  const unsigned bits =
      static_cast<unsigned>(std::max(4, std::min(24, 127 / ki - 12)));

  Rational sum;
  for (const Job& j : instance.jobs()) {
    const Rational q = Rational::from_double(j.size).floor_to_dyadic(bits);
    if (!q.valid()) return out;
    if (!q.is_positive()) continue;  // floors to 0: contributes nothing
    Rational pw = q;
    for (int e = 1; e < ki; ++e) pw *= q;
    sum += pw;
    if (!sum.valid()) return out;
  }
  out.value = std::max(0.0, sum.lower_double());
  out.certified = true;
  return out;
}

OptBounds opt_bounds(const Instance& instance, const OptBoundsOptions& options) {
  OptBounds out;
  out.k = options.k;
  out.machines = options.machines;

  for (const Job& j : instance.jobs()) {
    out.trivial_lb += std::pow(j.size, options.k);
  }
  const CertifiedBound trivial_cert =
      certified_trivial_bound(instance, options.k);

  CertifiedBound lp_cert;
  if (options.with_lp && !instance.empty()) {
    double slot = options.lp_slot;
    if (slot <= 0.0) {
      slot = std::min(1.0, instance.min_size());
      const double horizon =
          instance.horizon_bound(options.machines, 1.0) - instance.min_release();
      // The grid dominates the MCMF cost (roughly slots x jobs edges and
      // slots+jobs augmentations); a coarser grid only loosens the lower
      // bound, never invalidates it.
      constexpr double kMaxSlots = 600.0;
      const double min_slot = horizon / kMaxSlots;
      // A denormal/zero min size (or a degenerate horizon) must not reach
      // the LP as slot = 0: the negated comparison also catches NaN.
      if (!(slot >= min_slot)) slot = min_slot;
      if (!(slot > 0.0) || !std::isfinite(slot)) slot = 1.0;
    }
    FlowtimeLpOptions lp_opts;
    lp_opts.k = options.k;
    lp_opts.machines = options.machines;
    lp_opts.slot = slot;
    const FlowtimeLpResult lp = solve_flowtime_lp(instance, lp_opts);
    out.lp_lb = lp.opt_power_lb;
    if (lp.certificate.certified) {
      lp_cert.value = lp.certificate.value / 2.0;
      lp_cert.certified = true;
    }
  }
  out.best_lb = std::max(out.trivial_lb, out.lp_lb);

  if (trivial_cert.certified) {
    out.certified_lb = std::max(out.certified_lb, trivial_cert.value);
  }
  if (lp_cert.certified) {
    out.certified_lb = std::max(out.certified_lb, lp_cert.value);
  }
  out.lb_certified = (trivial_cert.certified || lp_cert.certified) &&
                     out.certified_lb > 0.0;
  obs::add(out.lb_certified ? "lpcert.lb_certified" : "lpcert.lb_uncertified",
           1);

  RunRequest request;
  request.machines = options.machines;
  request.speed = 1.0;
  request.record_trace = false;
  request.policy = "srpt";
  const double srpt_cost =
      flow_lk_power(run(instance, request).schedule, options.k);
  request.policy = "sjf";
  const double sjf_cost =
      flow_lk_power(run(instance, request).schedule, options.k);
  out.proxy_ub = std::min(srpt_cost, sjf_cost);
  return out;
}

}  // namespace tempofair::lpsolve
