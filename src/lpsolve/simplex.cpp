#include "lpsolve/simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "obs/obs.h"

namespace tempofair::lpsolve {

namespace {

constexpr double kTol = 1e-9;

/// Dense tableau in canonical form: rows of equalities over [structural |
/// slack | artificial] variables, all rhs >= 0, plus a basis.
struct Tableau {
  std::size_t rows = 0;
  std::size_t cols = 0;                 // total variables
  std::vector<std::vector<double>> a;   // rows x cols
  std::vector<double> b;                // rhs, >= 0 invariant
  std::vector<std::size_t> basis;       // basic variable per row

  void pivot(std::size_t r, std::size_t c) {
    const double p = a[r][c];
    for (std::size_t j = 0; j < cols; ++j) a[r][j] /= p;
    b[r] /= p;
    for (std::size_t i = 0; i < rows; ++i) {
      if (i == r) continue;
      const double f = a[i][c];
      if (std::fabs(f) < kTol) continue;
      for (std::size_t j = 0; j < cols; ++j) a[i][j] -= f * a[r][j];
      b[i] -= f * b[r];
      if (b[i] < 0.0 && b[i] > -kTol) b[i] = 0.0;
    }
    basis[r] = c;
  }

  [[nodiscard]] double objective(const std::vector<double>& c) const {
    double obj = 0.0;
    for (std::size_t i = 0; i < rows; ++i) obj += c[basis[i]] * b[i];
    return obj;
  }
};

struct SimplexStats {
  std::size_t pivots = 0;
  std::size_t bland_switches = 0;
};

/// Runs the simplex on `t` minimizing cost vector `c` (restricted to
/// `allowed` columns).  Dantzig pricing by default; after `stall_limit`
/// consecutive pivots without objective progress (degeneracy / cycling) the
/// pricing switches to Bland's rule, which cannot cycle.  Returns status; on
/// optimal, reduced costs are clean.
SolveStatus run_simplex(Tableau& t, const std::vector<double>& c,
                        const std::vector<bool>& allowed, std::size_t max_iters,
                        SimplexStats& stats) {
  // Maintain reduced costs z_j = c_j - c_B . B^{-1} A_j implicitly by
  // recomputing from the tableau each pivot (fine at these sizes).
  std::vector<double> reduced(t.cols);
  const std::size_t stall_limit = 2 * (t.rows + t.cols) + 16;
  std::size_t stalled = 0;
  bool bland = false;
  double last_obj = t.objective(c);

  for (std::size_t iter = 0; iter < max_iters; ++iter) {
    // reduced_j = c_j - sum_i c_basis[i] * a[i][j]
    for (std::size_t j = 0; j < t.cols; ++j) {
      double z = c[j];
      for (std::size_t i = 0; i < t.rows; ++i) {
        const double cb = c[t.basis[i]];
        if (cb != 0.0) z -= cb * t.a[i][j];
      }
      reduced[j] = z;
    }

    // Entering column: Dantzig rule (single -kTol threshold, strict
    // improvement -- no per-candidate tolerance drift), or lowest eligible
    // index once Bland's rule is active.
    std::size_t enter = t.cols;
    double best = -kTol;
    for (std::size_t j = 0; j < t.cols; ++j) {
      if (!allowed[j]) continue;
      if (reduced[j] < best) {
        best = reduced[j];
        enter = j;
        if (bland) break;  // first eligible index wins
      }
    }
    if (enter == t.cols) return SolveStatus::kOptimal;

    // Leaving row: minimum ratio, Bland tie-break by basis index.
    std::size_t leave = t.rows;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < t.rows; ++i) {
      if (t.a[i][enter] > kTol) {
        const double ratio = t.b[i] / t.a[i][enter];
        if (ratio < best_ratio - kTol ||
            (ratio < best_ratio + kTol &&
             (leave == t.rows || t.basis[i] < t.basis[leave]))) {
          best_ratio = ratio;
          leave = i;
        }
      }
    }
    if (leave == t.rows) return SolveStatus::kUnbounded;
    t.pivot(leave, enter);
    ++stats.pivots;

    if (!bland) {
      const double obj = t.objective(c);
      if (obj >= last_obj - kTol * (1.0 + std::fabs(last_obj))) {
        if (++stalled > stall_limit) {
          bland = true;  // degenerate stall: guarantee termination
          ++stats.bland_switches;
        }
      } else {
        stalled = 0;
      }
      last_obj = obj;
    }
  }
  return SolveStatus::kIterLimit;
}

}  // namespace

StandardForm standardize(const LinearProgram& lp) {
  const std::size_t n = lp.num_vars();
  for (const auto& row : lp.rows) {
    if (row.coeffs.size() != n) {
      throw std::invalid_argument("solve_lp: row width != objective size");
    }
  }
  StandardForm sf;
  sf.n = n;
  sf.rows = lp.rows.size();
  for (const auto& row : lp.rows) {
    if (row.rel != LinearProgram::Rel::kEq) ++sf.slacks;
  }
  sf.cols = n + sf.slacks + sf.rows;
  sf.a.assign(sf.rows, std::vector<double>(n + sf.slacks, 0.0));
  sf.b.assign(sf.rows, 0.0);
  sf.row_sign.assign(sf.rows, 1.0);

  std::size_t slack_at = n;
  for (std::size_t i = 0; i < sf.rows; ++i) {
    const auto& row = lp.rows[i];
    const double sign = row.rhs < 0.0 ? -1.0 : 1.0;  // normalize rhs >= 0
    sf.row_sign[i] = sign;
    for (std::size_t j = 0; j < n; ++j) sf.a[i][j] = sign * row.coeffs[j];
    sf.b[i] = sign * row.rhs;
    LinearProgram::Rel rel = row.rel;
    if (sign < 0.0) {
      if (rel == LinearProgram::Rel::kLe) rel = LinearProgram::Rel::kGe;
      else if (rel == LinearProgram::Rel::kGe) rel = LinearProgram::Rel::kLe;
    }
    if (rel == LinearProgram::Rel::kLe) {
      sf.a[i][slack_at++] = 1.0;
    } else if (rel == LinearProgram::Rel::kGe) {
      sf.a[i][slack_at++] = -1.0;
    }
  }
  return sf;
}

LpSolution solve_lp(const LinearProgram& lp, std::size_t max_iters) {
  const StandardForm sf = standardize(lp);
  const std::size_t n = sf.n;
  const std::size_t m = sf.rows;

  Tableau t;
  t.rows = m;
  t.cols = sf.cols;
  t.a.assign(m, std::vector<double>(sf.cols, 0.0));
  t.b = sf.b;
  t.basis.assign(m, 0);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n + sf.slacks; ++j) t.a[i][j] = sf.a[i][j];
    // Artificial variable for this row; starts basic.
    t.a[i][sf.artificial(i)] = 1.0;
    t.basis[i] = sf.artificial(i);
  }

  SimplexStats stats;
  LpSolution sol;
  const auto finish = [&stats](LpSolution s) {
    obs::add("simplex.pivots", stats.pivots);
    if (stats.bland_switches > 0) {
      obs::add("simplex.bland_switches", stats.bland_switches);
    }
    obs::add("simplex.solves", 1);
    return s;
  };

  // Phase 1: minimize sum of artificials.
  std::vector<double> c1(sf.cols, 0.0);
  for (std::size_t i = 0; i < m; ++i) c1[sf.artificial(i)] = 1.0;
  std::vector<bool> allowed(sf.cols, true);
  SolveStatus st = run_simplex(t, c1, allowed, max_iters, stats);
  if (st != SolveStatus::kOptimal) {
    sol.status = st;
    return finish(sol);
  }
  double phase1 = 0.0;
  double bscale = 1.0;
  for (std::size_t i = 0; i < m; ++i) {
    bscale = std::max(bscale, sf.b[i]);
    if (t.basis[i] >= n + sf.slacks) phase1 += t.b[i];
  }
  // Feasibility cutoff on the same kTol the pivoting uses, scaled by the
  // rhs magnitude (a fixed absolute cutoff misclassifies scaled problems).
  if (phase1 > kTol * bscale * static_cast<double>(m + 1)) {
    sol.status = SolveStatus::kInfeasible;
    return finish(sol);
  }

  // Drive any artificial still basic (at value ~0) out of the basis if a
  // non-artificial column with a nonzero entry exists; otherwise the row is
  // redundant and harmless.
  for (std::size_t i = 0; i < m; ++i) {
    if (t.basis[i] >= n + sf.slacks) {
      for (std::size_t j = 0; j < n + sf.slacks; ++j) {
        if (std::fabs(t.a[i][j]) > kTol) {
          t.pivot(i, j);
          break;
        }
      }
    }
  }

  // Phase 2: original objective, artificials barred.
  std::vector<double> c2(sf.cols, 0.0);
  for (std::size_t j = 0; j < n; ++j) c2[j] = lp.objective[j];
  for (std::size_t j = n + sf.slacks; j < sf.cols; ++j) allowed[j] = false;
  st = run_simplex(t, c2, allowed, max_iters, stats);
  if (st != SolveStatus::kOptimal) {
    sol.status = st;
    return finish(sol);
  }

  sol.status = SolveStatus::kOptimal;
  sol.x.assign(n, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    if (t.basis[i] < n) sol.x[t.basis[i]] = t.b[i];
  }
  double obj = 0.0;
  for (std::size_t j = 0; j < n; ++j) obj += lp.objective[j] * sol.x[j];
  sol.objective = obj;
  sol.basis = t.basis;
  // Dual vector from the final tableau: the artificial columns carry B^{-1},
  // so y_std_i = c_B . B^{-1} e_i; un-apply the rhs sign normalization to
  // get the dual of the original row.
  sol.duals.assign(m, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    double y = 0.0;
    for (std::size_t r = 0; r < m; ++r) {
      const double cb = c2[t.basis[r]];
      if (cb != 0.0) y += cb * t.a[r][sf.artificial(i)];
    }
    sol.duals[i] = sf.row_sign[i] * y;
  }
  return finish(sol);
}

}  // namespace tempofair::lpsolve
