#include "lpsolve/simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace tempofair::lpsolve {

namespace {

constexpr double kTol = 1e-9;

/// Dense tableau in canonical form: rows of equalities over [structural |
/// slack | artificial] variables, all rhs >= 0, plus a basis.
struct Tableau {
  std::size_t rows = 0;
  std::size_t cols = 0;                 // total variables
  std::vector<std::vector<double>> a;   // rows x cols
  std::vector<double> b;                // rhs, >= 0 invariant
  std::vector<std::size_t> basis;       // basic variable per row

  void pivot(std::size_t r, std::size_t c) {
    const double p = a[r][c];
    for (std::size_t j = 0; j < cols; ++j) a[r][j] /= p;
    b[r] /= p;
    for (std::size_t i = 0; i < rows; ++i) {
      if (i == r) continue;
      const double f = a[i][c];
      if (std::fabs(f) < kTol) continue;
      for (std::size_t j = 0; j < cols; ++j) a[i][j] -= f * a[r][j];
      b[i] -= f * b[r];
      if (b[i] < 0.0 && b[i] > -kTol) b[i] = 0.0;
    }
    basis[r] = c;
  }
};

/// Runs the simplex on `t` minimizing cost vector `c` (restricted to
/// `allowed` columns).  Returns status; on optimal, reduced costs are clean.
SolveStatus run_simplex(Tableau& t, const std::vector<double>& c,
                        const std::vector<bool>& allowed, std::size_t max_iters) {
  // Maintain reduced costs z_j = c_j - c_B . B^{-1} A_j implicitly by
  // recomputing from the tableau each pivot (fine at these sizes).
  std::vector<double> reduced(t.cols);
  for (std::size_t iter = 0; iter < max_iters; ++iter) {
    // reduced_j = c_j - sum_i c_basis[i] * a[i][j]
    for (std::size_t j = 0; j < t.cols; ++j) {
      double z = c[j];
      for (std::size_t i = 0; i < t.rows; ++i) {
        const double cb = c[t.basis[i]];
        if (cb != 0.0) z -= cb * t.a[i][j];
      }
      reduced[j] = z;
    }

    // Entering column: Dantzig rule, Bland tie-break by index for safety.
    std::size_t enter = t.cols;
    double best = -kTol;
    for (std::size_t j = 0; j < t.cols; ++j) {
      if (!allowed[j]) continue;
      if (reduced[j] < best - kTol) {
        best = reduced[j];
        enter = j;
      }
    }
    if (enter == t.cols) return SolveStatus::kOptimal;

    // Leaving row: minimum ratio, Bland tie-break by basis index.
    std::size_t leave = t.rows;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < t.rows; ++i) {
      if (t.a[i][enter] > kTol) {
        const double ratio = t.b[i] / t.a[i][enter];
        if (ratio < best_ratio - kTol ||
            (ratio < best_ratio + kTol &&
             (leave == t.rows || t.basis[i] < t.basis[leave]))) {
          best_ratio = ratio;
          leave = i;
        }
      }
    }
    if (leave == t.rows) return SolveStatus::kUnbounded;
    t.pivot(leave, enter);
  }
  return SolveStatus::kIterLimit;
}

}  // namespace

LpSolution solve_lp(const LinearProgram& lp, std::size_t max_iters) {
  const std::size_t n = lp.num_vars();
  for (const auto& row : lp.rows) {
    if (row.coeffs.size() != n) {
      throw std::invalid_argument("solve_lp: row width != objective size");
    }
  }
  const std::size_t m = lp.rows.size();

  // Count slack variables (one per inequality).
  std::size_t slacks = 0;
  for (const auto& row : lp.rows) {
    if (row.rel != LinearProgram::Rel::kEq) ++slacks;
  }
  const std::size_t cols = n + slacks + m;  // + one artificial per row
  Tableau t;
  t.rows = m;
  t.cols = cols;
  t.a.assign(m, std::vector<double>(cols, 0.0));
  t.b.assign(m, 0.0);
  t.basis.assign(m, 0);

  std::size_t slack_at = n;
  for (std::size_t i = 0; i < m; ++i) {
    const auto& row = lp.rows[i];
    double sign = 1.0;
    if (row.rhs < 0.0) sign = -1.0;  // normalize rhs >= 0
    for (std::size_t j = 0; j < n; ++j) t.a[i][j] = sign * row.coeffs[j];
    t.b[i] = sign * row.rhs;
    LinearProgram::Rel rel = row.rel;
    if (sign < 0.0) {
      if (rel == LinearProgram::Rel::kLe) rel = LinearProgram::Rel::kGe;
      else if (rel == LinearProgram::Rel::kGe) rel = LinearProgram::Rel::kLe;
    }
    if (rel == LinearProgram::Rel::kLe) {
      t.a[i][slack_at++] = 1.0;
    } else if (rel == LinearProgram::Rel::kGe) {
      t.a[i][slack_at++] = -1.0;
    }
    // Artificial variable for this row; starts basic.
    t.a[i][n + slacks + i] = 1.0;
    t.basis[i] = n + slacks + i;
  }

  // Phase 1: minimize sum of artificials.
  std::vector<double> c1(cols, 0.0);
  for (std::size_t i = 0; i < m; ++i) c1[n + slacks + i] = 1.0;
  std::vector<bool> allowed(cols, true);
  SolveStatus st = run_simplex(t, c1, allowed, max_iters);
  if (st != SolveStatus::kOptimal) return LpSolution{st, 0.0, {}};
  double phase1 = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    if (t.basis[i] >= n + slacks) phase1 += t.b[i];
  }
  if (phase1 > 1e-6) return LpSolution{SolveStatus::kInfeasible, 0.0, {}};

  // Drive any artificial still basic (at value ~0) out of the basis if a
  // non-artificial column with a nonzero entry exists; otherwise the row is
  // redundant and harmless.
  for (std::size_t i = 0; i < m; ++i) {
    if (t.basis[i] >= n + slacks) {
      for (std::size_t j = 0; j < n + slacks; ++j) {
        if (std::fabs(t.a[i][j]) > kTol) {
          t.pivot(i, j);
          break;
        }
      }
    }
  }

  // Phase 2: original objective, artificials barred.
  std::vector<double> c2(cols, 0.0);
  for (std::size_t j = 0; j < n; ++j) c2[j] = lp.objective[j];
  for (std::size_t j = n + slacks; j < cols; ++j) allowed[j] = false;
  st = run_simplex(t, c2, allowed, max_iters);
  if (st != SolveStatus::kOptimal) return LpSolution{st, 0.0, {}};

  LpSolution sol;
  sol.status = SolveStatus::kOptimal;
  sol.x.assign(n, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    if (t.basis[i] < n) sol.x[t.basis[i]] = t.b[i];
  }
  sol.objective = 0.0;
  for (std::size_t j = 0; j < n; ++j) sol.objective += lp.objective[j] * sol.x[j];
  return sol;
}

}  // namespace tempofair::lpsolve
