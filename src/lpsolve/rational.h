// Overflow-checked 128-bit rational arithmetic for the certified LP layer.
//
// Every IEEE double is an exact rational p / 2^e; `Rational::from_double`
// performs that conversion losslessly, so arithmetic over LP data that was
// *stated* in doubles is exact.  All operations are overflow-checked: a
// result that does not fit in a normalized __int128 fraction becomes
// *invalid*, and invalidity poisons every downstream computation (including
// comparisons, which conservatively return false).  The certificate verifier
// therefore degrades to "uncertified", never to a wrong bound.
//
// This is deliberately not a bignum: 128 bits with eager gcd-normalization
// cover the LP certificates we check (0/±1 constraint matrices, dyadic
// costs, grid-quantized duals) with large margin, at a fraction of the cost
// and dependency surface of arbitrary precision.
#pragma once

#include <cstdint>
#include <string>

namespace tempofair::lpsolve {

#if !defined(__SIZEOF_INT128__)
#error "tempofair::lpsolve::Rational requires compiler __int128 support"
#endif

class Rational {
 public:
  using Int = __int128;

  /// Zero.
  constexpr Rational() = default;

  [[nodiscard]] static Rational from_int(long long value);
  /// num / den, normalized.  Invalid when den == 0.
  [[nodiscard]] static Rational from_ratio(long long num, long long den);
  /// Exact conversion; invalid for NaN/inf or exponents outside 128 bits.
  [[nodiscard]] static Rational from_double(double value);
  /// An explicitly invalid (poison) value.
  [[nodiscard]] static Rational invalid();

  /// False once any overflow / bad input has poisoned the value.
  [[nodiscard]] bool valid() const noexcept { return valid_; }

  [[nodiscard]] Int num() const noexcept { return num_; }
  [[nodiscard]] Int den() const noexcept { return den_; }

  /// Nearest-double approximation (0.0 when invalid).
  [[nodiscard]] double to_double() const noexcept;
  /// Largest double known to be <= the exact value (for certified lower
  /// bounds).  Returns -inf when invalid.
  [[nodiscard]] double lower_double() const noexcept;
  /// Smallest double known to be >= the exact value.  +inf when invalid.
  [[nodiscard]] double upper_double() const noexcept;

  /// Largest multiple of 1/2^bits that is <= the exact value.  Used to
  /// quantize dual candidates so downstream exact arithmetic stays small.
  [[nodiscard]] Rational floor_to_dyadic(unsigned bits) const;
  /// Smallest multiple of 1/2^bits that is >= the exact value.
  [[nodiscard]] Rational ceil_to_dyadic(unsigned bits) const;

  [[nodiscard]] bool is_zero() const noexcept {
    return valid_ && num_ == 0;
  }
  [[nodiscard]] bool is_negative() const noexcept {
    return valid_ && num_ < 0;
  }
  [[nodiscard]] bool is_positive() const noexcept {
    return valid_ && num_ > 0;
  }

  friend Rational operator+(const Rational& a, const Rational& b);
  friend Rational operator-(const Rational& a, const Rational& b);
  friend Rational operator*(const Rational& a, const Rational& b);
  friend Rational operator/(const Rational& a, const Rational& b);
  Rational operator-() const;

  Rational& operator+=(const Rational& o) { return *this = *this + o; }
  Rational& operator-=(const Rational& o) { return *this = *this - o; }
  Rational& operator*=(const Rational& o) { return *this = *this * o; }
  Rational& operator/=(const Rational& o) { return *this = *this / o; }

  /// Exact comparisons.  Any comparison involving an invalid value returns
  /// false, so feasibility checks written as `lhs <= rhs` fail closed.
  friend bool operator==(const Rational& a, const Rational& b);
  friend bool operator!=(const Rational& a, const Rational& b);
  friend bool operator<(const Rational& a, const Rational& b);
  friend bool operator<=(const Rational& a, const Rational& b);
  friend bool operator>(const Rational& a, const Rational& b);
  friend bool operator>=(const Rational& a, const Rational& b);

  /// "num/den" (or "invalid") for diagnostics.
  [[nodiscard]] std::string str() const;

 private:
  Rational(Int num, Int den, bool valid) noexcept
      : num_(num), den_(den), valid_(valid) {}
  /// Builds num/den, normalizing sign and gcd; poisons on den == 0.
  [[nodiscard]] static Rational make(Int num, Int den) noexcept;

  Int num_ = 0;
  Int den_ = 1;  // > 0 whenever valid_
  bool valid_ = true;
};

}  // namespace tempofair::lpsolve
