#include "lpsolve/rational.h"

#include <cmath>
#include <limits>

namespace tempofair::lpsolve {

namespace {

using Int = Rational::Int;
using UInt = unsigned __int128;

UInt uabs(Int v) {
  return v < 0 ? -static_cast<UInt>(v) : static_cast<UInt>(v);
}

UInt gcd_u(UInt a, UInt b) {
  while (b != 0) {
    const UInt t = a % b;
    a = b;
    b = t;
  }
  return a;
}

bool mul_overflows(Int a, Int b, Int* out) {
  return __builtin_mul_overflow(a, b, out);
}

bool add_overflows(Int a, Int b, Int* out) {
  return __builtin_add_overflow(a, b, out);
}

double int128_to_double(Int v) {
  return static_cast<double>(v);  // correctly rounded per IEEE conversion
}

}  // namespace

Rational Rational::make(Int num, Int den) noexcept {
  if (den == 0) return invalid();
  if (den < 0) {
    // -INT128_MIN overflows; such a denominator cannot be normalized.
    if (den == std::numeric_limits<Int>::min() ||
        num == std::numeric_limits<Int>::min()) {
      return invalid();
    }
    num = -num;
    den = -den;
  }
  if (num == 0) return Rational(0, 1, true);
  const UInt g = gcd_u(uabs(num), static_cast<UInt>(den));
  if (g > 1) {
    num /= static_cast<Int>(g);
    den /= static_cast<Int>(g);
  }
  return Rational(num, den, true);
}

Rational Rational::invalid() {
  return Rational(0, 0, false);
}

Rational Rational::from_int(long long value) {
  return Rational(static_cast<Int>(value), 1, true);
}

Rational Rational::from_ratio(long long num, long long den) {
  return make(static_cast<Int>(num), static_cast<Int>(den));
}

Rational Rational::from_double(double value) {
  if (!std::isfinite(value)) return invalid();
  if (value == 0.0) return Rational();
  int exp = 0;
  const double mant = std::frexp(value, &exp);  // value = mant * 2^exp
  // mant * 2^53 is an odd-or-even integer with |.| in [2^52, 2^53).
  const auto scaled = static_cast<long long>(std::ldexp(mant, 53));
  const int pow2 = exp - 53;  // value = scaled * 2^pow2
  if (pow2 >= 0) {
    if (pow2 > 74) return invalid();  // |scaled| < 2^53; shift must fit
    return make(static_cast<Int>(scaled) << pow2, 1);
  }
  if (pow2 < -126) return invalid();
  return make(static_cast<Int>(scaled), static_cast<Int>(1) << -pow2);
}

double Rational::to_double() const noexcept {
  if (!valid_) return 0.0;
  return int128_to_double(num_) / int128_to_double(den_);
}

double Rational::lower_double() const noexcept {
  if (!valid_) return -std::numeric_limits<double>::infinity();
  double d = to_double();
  // from_double is exact, so the exact comparison below terminates after at
  // most a few ulp steps (double division is correctly rounded).
  while (from_double(d) > *this) {
    d = std::nextafter(d, -std::numeric_limits<double>::infinity());
  }
  return d;
}

double Rational::upper_double() const noexcept {
  if (!valid_) return std::numeric_limits<double>::infinity();
  double d = to_double();
  while (from_double(d) < *this) {
    d = std::nextafter(d, std::numeric_limits<double>::infinity());
  }
  return d;
}

Rational Rational::floor_to_dyadic(unsigned bits) const {
  if (!valid_ || bits > 62) return invalid();
  const Int scale = static_cast<Int>(1) << bits;
  Int scaled_num = 0;
  if (mul_overflows(num_, scale, &scaled_num)) return invalid();
  // Floor division for possibly-negative numerators.
  Int q = scaled_num / den_;
  if (scaled_num % den_ != 0 && scaled_num < 0) --q;
  return make(q, scale);
}

Rational Rational::ceil_to_dyadic(unsigned bits) const {
  const Rational neg = (-*this).floor_to_dyadic(bits);
  return -neg;
}

Rational Rational::operator-() const {
  if (!valid_ || num_ == std::numeric_limits<Int>::min()) return invalid();
  return Rational(-num_, den_, true);
}

Rational operator+(const Rational& a, const Rational& b) {
  if (!a.valid_ || !b.valid_) return Rational::invalid();
  // a.num/a.den + b.num/b.den over the reduced common denominator.
  const UInt g = gcd_u(static_cast<UInt>(a.den_), static_cast<UInt>(b.den_));
  const Int bden_red = b.den_ / static_cast<Int>(g);
  const Int aden_red = a.den_ / static_cast<Int>(g);
  Int lhs = 0, rhs = 0, num = 0, den = 0;
  if (mul_overflows(a.num_, bden_red, &lhs) ||
      mul_overflows(b.num_, aden_red, &rhs) ||
      add_overflows(lhs, rhs, &num) ||
      mul_overflows(a.den_, bden_red, &den)) {
    return Rational::invalid();
  }
  return Rational::make(num, den);
}

Rational operator-(const Rational& a, const Rational& b) {
  return a + (-b);
}

Rational operator*(const Rational& a, const Rational& b) {
  if (!a.valid_ || !b.valid_) return Rational::invalid();
  // Cross-reduce before multiplying to keep intermediates small.
  const UInt g1 = gcd_u(uabs(a.num_), static_cast<UInt>(b.den_));
  const UInt g2 = gcd_u(uabs(b.num_), static_cast<UInt>(a.den_));
  const Int an = a.num_ / static_cast<Int>(g1 == 0 ? 1 : g1);
  const Int bd = b.den_ / static_cast<Int>(g1 == 0 ? 1 : g1);
  const Int bn = b.num_ / static_cast<Int>(g2 == 0 ? 1 : g2);
  const Int ad = a.den_ / static_cast<Int>(g2 == 0 ? 1 : g2);
  Int num = 0, den = 0;
  if (mul_overflows(an, bn, &num) || mul_overflows(ad, bd, &den)) {
    return Rational::invalid();
  }
  return Rational::make(num, den);
}

Rational operator/(const Rational& a, const Rational& b) {
  if (!a.valid_ || !b.valid_ || b.num_ == 0) return Rational::invalid();
  return a * Rational::make(b.den_, b.num_);
}

bool operator==(const Rational& a, const Rational& b) {
  if (!a.valid_ || !b.valid_) return false;
  return a.num_ == b.num_ && a.den_ == b.den_;  // both normalized
}

bool operator!=(const Rational& a, const Rational& b) {
  if (!a.valid_ || !b.valid_) return false;
  return !(a == b);
}

bool operator<(const Rational& a, const Rational& b) {
  if (!a.valid_ || !b.valid_) return false;
  // a.num/a.den < b.num/b.den  <=>  a.num*b.den < b.num*a.den (dens > 0).
  Int lhs = 0, rhs = 0;
  if (mul_overflows(a.num_, b.den_, &lhs) ||
      mul_overflows(b.num_, a.den_, &rhs)) {
    // Fall back to the (a - b) sign, which cross-reduces internally.
    const Rational diff = a - b;
    return diff.valid_ && diff.num_ < 0;
  }
  return lhs < rhs;
}

bool operator<=(const Rational& a, const Rational& b) {
  return a == b || a < b;
}

bool operator>(const Rational& a, const Rational& b) {
  return b < a;
}

bool operator>=(const Rational& a, const Rational& b) {
  return b <= a;
}

std::string Rational::str() const {
  if (!valid_) return "invalid";
  auto digits = [](Int v) {
    if (v == 0) return std::string("0");
    const bool neg = v < 0;
    UInt u = neg ? -static_cast<UInt>(v) : static_cast<UInt>(v);
    std::string out;
    while (u != 0) {
      out.insert(out.begin(), static_cast<char>('0' + static_cast<int>(u % 10)));
      u /= 10;
    }
    if (neg) out.insert(out.begin(), '-');
    return out;
  };
  if (den_ == 1) return digits(num_);
  return digits(num_) + "/" + digits(den_);
}

}  // namespace tempofair::lpsolve
