#include "lpsolve/lp_fuzz.h"

#include <cmath>
#include <random>
#include <sstream>
#include <utility>

#include "core/instance.h"
#include "lpsolve/certify.h"
#include "lpsolve/flowtime_lp.h"
#include "lpsolve/simplex.h"

namespace tempofair::lpsolve {

namespace {

const char* status_name(SolveStatus s) {
  switch (s) {
    case SolveStatus::kOptimal: return "optimal";
    case SolveStatus::kInfeasible: return "infeasible";
    case SolveStatus::kUnbounded: return "unbounded";
    case SolveStatus::kIterLimit: return "iter_limit";
  }
  return "?";
}

/// Random LP over half-integer coefficients (exactly representable, so the
/// float and exact solvers see literally the same program).
LinearProgram random_lp(std::mt19937_64& rng, const LpFuzzOptions& opt) {
  std::uniform_int_distribution<int> nv(1, static_cast<int>(opt.max_vars));
  std::uniform_int_distribution<int> nr(1, static_cast<int>(opt.max_rows));
  std::uniform_int_distribution<int> coeff(-8, 8);   // halves: [-4, 4]
  std::uniform_int_distribution<int> rhs(-12, 12);   // halves: [-6, 6]
  std::uniform_int_distribution<int> rel(0, 5);

  LinearProgram lp;
  const int n = nv(rng);
  const int m = nr(rng);
  lp.objective.resize(n);
  for (double& c : lp.objective) c = coeff(rng) / 2.0;
  lp.rows.resize(m);
  for (auto& row : lp.rows) {
    row.coeffs.resize(n);
    for (double& a : row.coeffs) a = coeff(rng) / 2.0;
    const int r = rel(rng);
    // Bias toward inequalities; random equality rows (including negative
    // rhs ones) keep the sign-normalization path honest.
    row.rel = r < 3 ? LinearProgram::Rel::kLe
                    : (r < 5 ? LinearProgram::Rel::kGe : LinearProgram::Rel::kEq);
    row.rhs = rhs(rng) / 2.0;
  }
  return lp;
}

Instance random_instance(std::mt19937_64& rng) {
  std::uniform_int_distribution<int> nj(1, 4);
  std::uniform_int_distribution<int> rel(0, 6);   // halves: [0, 3]
  std::uniform_int_distribution<int> size(1, 6);  // halves: [0.5, 3]
  const int n = nj(rng);
  std::vector<std::pair<Time, Work>> pairs;
  pairs.reserve(n);
  for (int j = 0; j < n; ++j) {
    pairs.emplace_back(rel(rng) / 2.0, size(rng) / 2.0);
  }
  return Instance::from_pairs(pairs);
}

}  // namespace

LpFuzzReport run_lp_fuzz(const LpFuzzOptions& options) {
  LpFuzzReport rep;
  rep.seed = options.seed;
  std::mt19937_64 rng(options.seed);

  const auto fail = [&rep](std::size_t index, std::string what) {
    rep.disagreements.push_back(LpFuzzDisagreement{index, std::move(what)});
  };

  for (std::size_t i = 0; i < options.count; ++i) {
    const LinearProgram lp = random_lp(rng, options);
    const LpSolution fl = solve_lp(lp);
    const CertifyResult ex =
        solve_lp_exact(lp, fl.status == SolveStatus::kOptimal ? &fl : nullptr);

    switch (fl.status) {
      case SolveStatus::kOptimal: ++rep.optimal; break;
      case SolveStatus::kInfeasible: ++rep.infeasible; break;
      case SolveStatus::kUnbounded: ++rep.unbounded; break;
      case SolveStatus::kIterLimit: ++rep.iter_limit; break;
    }
    if (ex.warm_start_used) ++rep.warm_starts;

    // A pivot-budget exhaustion or 128-bit overflow on either side is a
    // capacity miss, not a disagreement.
    if (fl.status == SolveStatus::kIterLimit ||
        ex.exact_status == SolveStatus::kIterLimit) {
      if (fl.status != SolveStatus::kIterLimit) ++rep.iter_limit;
      continue;
    }

    if (fl.status != ex.exact_status) {
      std::ostringstream os;
      os << "status: float=" << status_name(fl.status)
         << " exact=" << status_name(ex.exact_status);
      fail(i, os.str());
      continue;
    }
    if (fl.status != SolveStatus::kOptimal) continue;

    const double exact = ex.exact_objective.to_double();
    const double flo = fl.objective.value_or(0.0);
    if (std::fabs(flo - exact) > 1e-6 * (1.0 + std::fabs(exact))) {
      std::ostringstream os;
      os << "objective: float=" << flo << " exact=" << exact;
      fail(i, os.str());
      continue;
    }

    const CertifiedBound cert = verify_certificate(lp, fl);
    if (cert.certified) {
      ++rep.certified;
      // A certificate must never claim more than the exact optimum.
      if (cert.value > ex.exact_objective.upper_double()) {
        std::ostringstream os;
        os << "certificate above exact optimum: cert=" << cert.value
           << " exact=" << exact;
        fail(i, os.str());
      }
    }
  }
  rep.count = options.count;

  if (options.flow_every > 0) {
    for (std::size_t i = 0; i < options.count; i += options.flow_every) {
      const Instance inst = random_instance(rng);
      FlowtimeLpOptions fopts;
      fopts.k = 2.0;
      fopts.machines = 1;
      fopts.slot = 0.5;
      const FlowtimeLpResult mcmf = solve_flowtime_lp(inst, fopts);
      const LinearProgram lp = build_flowtime_lp(inst, fopts);
      const LpSolution sx = solve_lp(lp);
      ++rep.flow_cases;

      if (sx.status != SolveStatus::kOptimal) {
        std::ostringstream os;
        os << "flow: simplex status=" << status_name(sx.status) << " on "
           << inst.summary();
        fail(options.count + i, os.str());
        continue;
      }
      const double sxo = *sx.objective;
      if (std::fabs(sxo - mcmf.lp_value) > 1e-6 * (1.0 + mcmf.lp_value)) {
        std::ostringstream os;
        os << "flow: simplex=" << sxo << " mcmf=" << mcmf.lp_value;
        fail(options.count + i, os.str());
        continue;
      }
      if (!mcmf.certificate.certified) {
        fail(options.count + i, "flow: MCMF dual certificate uncertified");
        continue;
      }
      if (mcmf.certificate.value > mcmf.lp_value + 1e-6 * (1.0 + mcmf.lp_value)) {
        std::ostringstream os;
        os << "flow: certificate=" << mcmf.certificate.value
           << " above lp_value=" << mcmf.lp_value;
        fail(options.count + i, os.str());
        continue;
      }
      // The exact verifier certifies the *simplex* side too; both
      // certificates bound the same LP, so they must sit below it.
      const CertifiedBound cert = verify_certificate(lp, sx);
      if (cert.certified &&
          cert.value > mcmf.lp_value + 1e-6 * (1.0 + mcmf.lp_value)) {
        std::ostringstream os;
        os << "flow: simplex certificate=" << cert.value
           << " above lp_value=" << mcmf.lp_value;
        fail(options.count + i, os.str());
      }
    }
  }
  return rep;
}

}  // namespace tempofair::lpsolve
