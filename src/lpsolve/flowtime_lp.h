// The flow-time LP relaxation of Section 3.1, discretized and solved exactly.
//
//   min  sum_{j,t} (x_{jt}/p_j) ((t - r_j)^k + p_j^k)
//   s.t. sum_t x_{jt} >= p_j          (every job fully processed)
//        sum_j x_{jt} <= m * slot     (machine capacity per slot)
//        x >= 0,   x_{jt} = 0 for t < r_j
//
// Time is discretized into slots of width `slot`; each slot's cost uses the
// slot's *start*, which under-estimates the true integrand (costs increase in
// t), so the discrete optimum is a valid lower bound on the continuous LP,
// which in turn is at most 2 * OPT^k (the paper's observation: for any
// feasible schedule, (t-r_j)^k <= F_j^k while j is alive and p_j^k <= F_j^k).
// Hence:   OPT^k  >=  lp_value / 2.
//
// The LP is a transportation problem (jobs -> slots) solved exactly by
// min-cost max-flow; build_lp() exposes the same program for the dense
// simplex so the two solvers can cross-validate (experiment T8).
#pragma once

#include "core/instance.h"
#include "lpsolve/certify.h"
#include "lpsolve/simplex.h"

namespace tempofair::lpsolve {

/// Jobs below this size are dropped from the LP.  A denormal-size job makes
/// unit_cost = (t^k + p^k) / p overflow to infinity, and removing a demand
/// row only *lowers* the LP optimum, so the relaxed value stays a valid
/// lower bound on OPT^k.
inline constexpr double kMinLpJobSize = 1e-12;

struct FlowtimeLpOptions {
  double k = 2.0;        ///< the l_k norm exponent
  int machines = 1;
  double slot = 1.0;     ///< discretization width
  /// Optional cap on the number of slots (0 = derive from the horizon bound).
  std::size_t max_slots = 0;
};

struct FlowtimeLpResult {
  double lp_value = 0.0;       ///< optimal discretized LP objective
  double opt_power_lb = 0.0;   ///< lp_value / 2: lower bound on OPT^k
  std::size_t slots = 0;
  std::size_t edges = 0;
  std::size_t skipped_jobs = 0;  ///< jobs below kMinLpJobSize dropped
  /// Exact-rational certificate for `lp_value`: a dual-feasible solution of
  /// the transportation LP, repaired from the min-cost-flow potentials and
  /// verified in exact arithmetic.  When certified, `certificate.value` is a
  /// machine-checked lower bound on the discretized LP optimum (so
  /// certificate.value / 2 certifies opt_power_lb).
  CertifiedBound certificate;
};

/// Solves the discretized LP exactly via min-cost max-flow.
/// Throws std::invalid_argument for empty instances or bad options.
[[nodiscard]] FlowtimeLpResult solve_flowtime_lp(const Instance& instance,
                                                 const FlowtimeLpOptions& options);

/// Builds the identical LP as a dense LinearProgram (variables x_{jt} in
/// job-major order, only t >= r_j slots materialized) for the simplex
/// cross-check.  Only sensible for tiny instances.
[[nodiscard]] LinearProgram build_flowtime_lp(const Instance& instance,
                                              const FlowtimeLpOptions& options);

}  // namespace tempofair::lpsolve
