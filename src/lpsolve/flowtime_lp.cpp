#include "lpsolve/flowtime_lp.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "lpsolve/mincost_flow.h"
#include "lpsolve/rational.h"
#include "obs/obs.h"

namespace tempofair::lpsolve {

namespace {

struct Grid {
  double t0 = 0.0;       // grid origin (min release)
  double slot = 1.0;
  std::size_t slots = 0;

  [[nodiscard]] double slot_start(std::size_t s) const {
    return t0 + static_cast<double>(s) * slot;
  }
  /// Slot containing the release.  Granting the *whole* slot (not just the
  /// part after r_j) relaxes the LP, and the cost there is evaluated at r_j
  /// itself (unit_cost clamps t - r_j at 0) -- both effects only lower the
  /// discrete optimum, keeping it a valid lower bound on the continuous LP.
  [[nodiscard]] std::size_t first_slot_for(double release) const {
    const double rel = (release - t0) / slot;
    return static_cast<std::size_t>(std::floor(rel + 1e-12));
  }
};

Grid make_grid(const Instance& instance, const FlowtimeLpOptions& options) {
  if (instance.empty()) {
    throw std::invalid_argument("flowtime_lp: empty instance");
  }
  if (!(options.slot > 0.0)) {
    throw std::invalid_argument("flowtime_lp: slot width must be > 0");
  }
  if (!(options.k >= 1.0)) {
    throw std::invalid_argument("flowtime_lp: k must be >= 1");
  }
  if (options.machines < 1) {
    throw std::invalid_argument("flowtime_lp: machines must be >= 1");
  }
  Grid g;
  g.t0 = instance.min_release();
  g.slot = options.slot;
  // Any left-compacted LP solution finishes by the horizon bound (capacity m
  // per unit time at speed 1); add one slot of padding.
  const double horizon =
      instance.horizon_bound(options.machines, 1.0) - g.t0;
  g.slots = static_cast<std::size_t>(std::ceil(horizon / g.slot)) + 1;
  if (options.max_slots > 0) g.slots = std::min(g.slots, options.max_slots);
  if (g.slots == 0) throw std::invalid_argument("flowtime_lp: zero slots");
  return g;
}

/// Cost per unit of processing of job j in slot s (evaluated at slot start).
double unit_cost(const Job& j, const Grid& g, std::size_t s, double k) {
  const double t = std::max(g.slot_start(s) - j.release, 0.0);
  return (std::pow(t, k) + std::pow(j.size, k)) / j.size;
}

[[nodiscard]] bool lp_included(const Job& j) {
  return j.size >= kMinLpJobSize;
}

/// Dyadic grid for quantized duals: multiples of 2^-24 keep every
/// denominator a power of two small enough that the exact dual objective
/// stays far from 128-bit overflow.
constexpr unsigned kDualGridBits = 24;

/// Repairs the min-cost-flow potentials into an exactly-feasible dual of the
/// transportation LP
///
///   max  sum_j p_j alpha_j - sum_t cap beta_t
///   s.t. alpha_j - beta_t <= c_jt   for every materialized (j, t) edge,
///        alpha, beta >= 0,
///
/// and evaluates its objective in exact rational arithmetic.  beta comes
/// from the potentials (zeroed on unsaturated slots per complementary
/// slackness, then quantized to the dyadic grid); alpha_j is then set to the
/// *exact* best response max(0, floor_grid(min_t (c_jt + beta_t))), which is
/// feasible by construction.  An independent exact pass re-checks every dual
/// constraint before the objective is trusted.  Weak duality then makes the
/// returned value a machine-checked lower bound on the LP optimum.  Any
/// overflow poisons the result and yields certified = false.
CertifiedBound certify_flowtime_dual(
    const std::vector<const Job*>& included, const Grid& g,
    const FlowtimeLpOptions& options, const MinCostFlow& mcf,
    std::size_t slot_node0, std::size_t sink_node,
    const std::vector<std::size_t>& slot_edge_handles) {
  const double slot_cap = g.slot * options.machines;
  const std::vector<double>& phi = mcf.potentials();

  // beta_t from the potentials.  Unsaturated slots get beta_t = 0
  // (complementary slackness says the optimal dual does, and zeroing can
  // only help the alpha best response); any nonnegative beta is feasible.
  std::vector<Rational> beta(g.slots);
  bool ok = true;
  for (std::size_t s = 0; s < g.slots; ++s) {
    double b = 0.0;
    if (mcf.flow_on(slot_edge_handles[s]) >= slot_cap - kFlowEps) {
      b = std::max(0.0, phi[sink_node] - phi[slot_node0 + s]);
    }
    beta[s] = Rational::from_double(b).floor_to_dyadic(kDualGridBits);
    if (beta[s].is_negative()) beta[s] = Rational();
    if (!beta[s].valid()) ok = false;
  }

  // alpha_j = max(0, floor_grid(min_t (c_jt + beta_t))), computed exactly.
  std::vector<Rational> alpha(included.size());
  for (std::size_t ji = 0; ji < included.size() && ok; ++ji) {
    const Job& j = *included[ji];
    const std::size_t first = g.first_slot_for(j.release);
    Rational best = Rational::invalid();
    for (std::size_t s = first; s < g.slots; ++s) {
      const Rational cand =
          Rational::from_double(unit_cost(j, g, s, options.k)) + beta[s];
      if (!cand.valid()) {
        ok = false;
        break;
      }
      if (!best.valid() || cand < best) best = cand;
    }
    if (!ok || !best.valid()) {
      ok = false;
      break;
    }
    alpha[ji] = best.floor_to_dyadic(kDualGridBits);
    if (alpha[ji].is_negative()) alpha[ji] = Rational();
    if (!alpha[ji].valid()) ok = false;
  }

  // Independent exact feasibility re-check of every dual constraint, so the
  // certificate does not depend on the construction above being right.
  for (std::size_t ji = 0; ji < included.size() && ok; ++ji) {
    const Job& j = *included[ji];
    for (std::size_t s = g.first_slot_for(j.release); s < g.slots; ++s) {
      const Rational c = Rational::from_double(unit_cost(j, g, s, options.k));
      if (!(alpha[ji] - beta[s] <= c)) {  // fails closed on invalid
        ok = false;
        break;
      }
    }
  }

  CertifiedBound cert;
  if (ok) {
    Rational dual_obj;
    for (std::size_t ji = 0; ji < included.size(); ++ji) {
      dual_obj += Rational::from_double(included[ji]->size) * alpha[ji];
    }
    const Rational cap = Rational::from_double(slot_cap);
    for (std::size_t s = 0; s < g.slots; ++s) {
      if (!beta[s].is_zero()) dual_obj -= cap * beta[s];
    }
    if (dual_obj.valid()) {
      // The LP objective is nonnegative, so 0 is always a certified bound.
      cert.value = std::max(0.0, dual_obj.lower_double());
      cert.certified = true;
    }
  }
  obs::add(cert.certified ? "lpcert.flow.certified" : "lpcert.flow.uncertified",
           1);
  return cert;
}

}  // namespace

FlowtimeLpResult solve_flowtime_lp(const Instance& instance,
                                   const FlowtimeLpOptions& options) {
  const Grid g = make_grid(instance, options);
  const std::size_t n = instance.n();

  std::vector<const Job*> included;
  included.reserve(n);
  double included_work = 0.0;
  for (const Job& j : instance.jobs()) {
    if (lp_included(j)) {
      included.push_back(&j);
      included_work += j.size;
    }
  }

  // Check the (possibly capped) grid has enough capacity for the work we
  // actually route.
  const double capacity =
      static_cast<double>(g.slots) * g.slot * options.machines;
  if (capacity < included_work - 1e-6) {
    throw std::invalid_argument(
        "flowtime_lp: max_slots leaves insufficient capacity for the work");
  }

  // Nodes: source | jobs (1..n) | slots (n+1 .. n+slots) | sink.
  const std::size_t kSource = 0;
  const std::size_t kJob0 = 1;
  const std::size_t kSlot0 = kJob0 + n;
  const std::size_t kSink = kSlot0 + g.slots;
  MinCostFlow mcf(kSink + 1);

  const double slot_cap = g.slot * options.machines;
  std::vector<std::size_t> slot_edge(g.slots);
  for (std::size_t s = 0; s < g.slots; ++s) {
    slot_edge[s] = mcf.add_edge(kSlot0 + s, kSink, slot_cap, 0.0);
  }
  std::size_t edges = g.slots;
  for (const Job* jp : included) {
    const Job& j = *jp;
    mcf.add_edge(kSource, kJob0 + j.id, j.size, 0.0);
    ++edges;
    const std::size_t first = g.first_slot_for(j.release);
    for (std::size_t s = first; s < g.slots; ++s) {
      // The slot->sink edge already caps how much any slot absorbs (the LP of
      // the paper lets a job run on several machines simultaneously), so the
      // job->slot arcs get a deliberately never-binding capacity.  This is
      // not cosmetic: a saturated arc may carry negative reduced cost in the
      // final potentials, which would break the transportation-dual reading
      // (alpha_j - beta_t <= c_jt, tight on flow-carrying arcs) that
      // certify_flowtime_dual builds the exact certificate from.
      mcf.add_edge(kJob0 + j.id, kSlot0 + s, included_work + 1.0,
                   unit_cost(j, g, s, options.k));
      ++edges;
    }
  }

  const MinCostFlow::Result r = mcf.solve(kSource, kSink, included_work);
  if (r.flow < included_work - 1e-6) {
    throw std::runtime_error("flowtime_lp: could not route all work (internal)");
  }

  FlowtimeLpResult out;
  out.lp_value = r.cost;
  out.opt_power_lb = r.cost / 2.0;
  out.slots = g.slots;
  out.edges = edges;
  out.skipped_jobs = n - included.size();
  out.certificate = certify_flowtime_dual(included, g, options, mcf, kSlot0,
                                          kSink, slot_edge);
  return out;
}

LinearProgram build_flowtime_lp(const Instance& instance,
                                const FlowtimeLpOptions& options) {
  const Grid g = make_grid(instance, options);
  const std::size_t n = instance.n();

  // Variable layout: for each *included* job j (in id order), one variable
  // per slot s >= first_slot_for(r_j).  Tiny jobs are dropped exactly as in
  // solve_flowtime_lp so the two solvers stay comparable.
  std::vector<bool> incl(n, false);
  std::vector<std::size_t> var_base(n + 1, 0);
  std::vector<std::size_t> first_slot(n, 0);
  for (std::size_t j = 0; j < n; ++j) {
    const Job& job = instance.job(static_cast<JobId>(j));
    incl[j] = lp_included(job);
    first_slot[j] = g.first_slot_for(job.release);
    var_base[j + 1] =
        var_base[j] + (incl[j] ? g.slots - first_slot[j] : 0);
  }
  const std::size_t num_vars = var_base[n];

  LinearProgram lp;
  lp.objective.assign(num_vars, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    if (!incl[j]) continue;
    const Job& job = instance.job(static_cast<JobId>(j));
    for (std::size_t s = first_slot[j]; s < g.slots; ++s) {
      lp.objective[var_base[j] + (s - first_slot[j])] =
          unit_cost(job, g, s, options.k);
    }
  }
  // sum_t x_{jt} >= p_j
  for (std::size_t j = 0; j < n; ++j) {
    if (!incl[j]) continue;
    LinearProgram::Row row;
    row.coeffs.assign(num_vars, 0.0);
    for (std::size_t s = first_slot[j]; s < g.slots; ++s) {
      row.coeffs[var_base[j] + (s - first_slot[j])] = 1.0;
    }
    row.rel = LinearProgram::Rel::kGe;
    row.rhs = instance.job(static_cast<JobId>(j)).size;
    lp.rows.push_back(std::move(row));
  }
  // sum_j x_{jt} <= m * slot
  for (std::size_t s = 0; s < g.slots; ++s) {
    LinearProgram::Row row;
    row.coeffs.assign(num_vars, 0.0);
    bool any = false;
    for (std::size_t j = 0; j < n; ++j) {
      if (incl[j] && s >= first_slot[j]) {
        row.coeffs[var_base[j] + (s - first_slot[j])] = 1.0;
        any = true;
      }
    }
    if (!any) continue;
    row.rel = LinearProgram::Rel::kLe;
    row.rhs = g.slot * options.machines;
    lp.rows.push_back(std::move(row));
  }
  return lp;
}

}  // namespace tempofair::lpsolve
