#include "lpsolve/flowtime_lp.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "lpsolve/mincost_flow.h"

namespace tempofair::lpsolve {

namespace {

struct Grid {
  double t0 = 0.0;       // grid origin (min release)
  double slot = 1.0;
  std::size_t slots = 0;

  [[nodiscard]] double slot_start(std::size_t s) const {
    return t0 + static_cast<double>(s) * slot;
  }
  /// Slot containing the release.  Granting the *whole* slot (not just the
  /// part after r_j) relaxes the LP, and the cost there is evaluated at r_j
  /// itself (unit_cost clamps t - r_j at 0) -- both effects only lower the
  /// discrete optimum, keeping it a valid lower bound on the continuous LP.
  [[nodiscard]] std::size_t first_slot_for(double release) const {
    const double rel = (release - t0) / slot;
    return static_cast<std::size_t>(std::floor(rel + 1e-12));
  }
};

Grid make_grid(const Instance& instance, const FlowtimeLpOptions& options) {
  if (instance.empty()) {
    throw std::invalid_argument("flowtime_lp: empty instance");
  }
  if (!(options.slot > 0.0)) {
    throw std::invalid_argument("flowtime_lp: slot width must be > 0");
  }
  if (!(options.k >= 1.0)) {
    throw std::invalid_argument("flowtime_lp: k must be >= 1");
  }
  if (options.machines < 1) {
    throw std::invalid_argument("flowtime_lp: machines must be >= 1");
  }
  Grid g;
  g.t0 = instance.min_release();
  g.slot = options.slot;
  // Any left-compacted LP solution finishes by the horizon bound (capacity m
  // per unit time at speed 1); add one slot of padding.
  const double horizon =
      instance.horizon_bound(options.machines, 1.0) - g.t0;
  g.slots = static_cast<std::size_t>(std::ceil(horizon / g.slot)) + 1;
  if (options.max_slots > 0) g.slots = std::min(g.slots, options.max_slots);
  if (g.slots == 0) throw std::invalid_argument("flowtime_lp: zero slots");
  return g;
}

/// Cost per unit of processing of job j in slot s (evaluated at slot start).
double unit_cost(const Job& j, const Grid& g, std::size_t s, double k) {
  const double t = std::max(g.slot_start(s) - j.release, 0.0);
  return (std::pow(t, k) + std::pow(j.size, k)) / j.size;
}

}  // namespace

FlowtimeLpResult solve_flowtime_lp(const Instance& instance,
                                   const FlowtimeLpOptions& options) {
  const Grid g = make_grid(instance, options);
  const std::size_t n = instance.n();

  // Check the (possibly capped) grid has enough capacity for all the work.
  const double capacity =
      static_cast<double>(g.slots) * g.slot * options.machines;
  if (capacity < instance.total_work() - 1e-6) {
    throw std::invalid_argument(
        "flowtime_lp: max_slots leaves insufficient capacity for the work");
  }

  // Nodes: source | jobs (1..n) | slots (n+1 .. n+slots) | sink.
  const std::size_t kSource = 0;
  const std::size_t kJob0 = 1;
  const std::size_t kSlot0 = kJob0 + n;
  const std::size_t kSink = kSlot0 + g.slots;
  MinCostFlow mcf(kSink + 1);

  const double slot_cap = g.slot * options.machines;
  for (std::size_t s = 0; s < g.slots; ++s) {
    mcf.add_edge(kSlot0 + s, kSink, slot_cap, 0.0);
  }
  std::size_t edges = g.slots;
  for (const Job& j : instance.jobs()) {
    mcf.add_edge(kSource, kJob0 + j.id, j.size, 0.0);
    ++edges;
    const std::size_t first = g.first_slot_for(j.release);
    for (std::size_t s = first; s < g.slots; ++s) {
      // A job can absorb at most the slot's full capacity (the LP of the
      // paper lets a job run on several machines simultaneously).
      mcf.add_edge(kJob0 + j.id, kSlot0 + s, slot_cap,
                   unit_cost(j, g, s, options.k));
      ++edges;
    }
  }

  const MinCostFlow::Result r = mcf.solve(kSource, kSink, instance.total_work());
  if (r.flow < instance.total_work() - 1e-6) {
    throw std::runtime_error("flowtime_lp: could not route all work (internal)");
  }

  FlowtimeLpResult out;
  out.lp_value = r.cost;
  out.opt_power_lb = r.cost / 2.0;
  out.slots = g.slots;
  out.edges = edges;
  return out;
}

LinearProgram build_flowtime_lp(const Instance& instance,
                                const FlowtimeLpOptions& options) {
  const Grid g = make_grid(instance, options);
  const std::size_t n = instance.n();

  // Variable layout: for each job j (in id order), one variable per slot
  // s >= first_slot_for(r_j).
  std::vector<std::size_t> var_base(n + 1, 0);
  std::vector<std::size_t> first_slot(n);
  for (std::size_t j = 0; j < n; ++j) {
    first_slot[j] = g.first_slot_for(instance.job(static_cast<JobId>(j)).release);
    var_base[j + 1] = var_base[j] + (g.slots - first_slot[j]);
  }
  const std::size_t num_vars = var_base[n];

  LinearProgram lp;
  lp.objective.assign(num_vars, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    const Job& job = instance.job(static_cast<JobId>(j));
    for (std::size_t s = first_slot[j]; s < g.slots; ++s) {
      lp.objective[var_base[j] + (s - first_slot[j])] =
          unit_cost(job, g, s, options.k);
    }
  }
  // sum_t x_{jt} >= p_j
  for (std::size_t j = 0; j < n; ++j) {
    LinearProgram::Row row;
    row.coeffs.assign(num_vars, 0.0);
    for (std::size_t s = first_slot[j]; s < g.slots; ++s) {
      row.coeffs[var_base[j] + (s - first_slot[j])] = 1.0;
    }
    row.rel = LinearProgram::Rel::kGe;
    row.rhs = instance.job(static_cast<JobId>(j)).size;
    lp.rows.push_back(std::move(row));
  }
  // sum_j x_{jt} <= m * slot
  for (std::size_t s = 0; s < g.slots; ++s) {
    LinearProgram::Row row;
    row.coeffs.assign(num_vars, 0.0);
    bool any = false;
    for (std::size_t j = 0; j < n; ++j) {
      if (s >= first_slot[j]) {
        row.coeffs[var_base[j] + (s - first_slot[j])] = 1.0;
        any = true;
      }
    }
    if (!any) continue;
    row.rel = LinearProgram::Rel::kLe;
    row.rhs = g.slot * options.machines;
    lp.rows.push_back(std::move(row));
  }
  return lp;
}

}  // namespace tempofair::lpsolve
