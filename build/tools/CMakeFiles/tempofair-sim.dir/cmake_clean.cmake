file(REMOVE_RECURSE
  "CMakeFiles/tempofair-sim.dir/tempofair_sim.cpp.o"
  "CMakeFiles/tempofair-sim.dir/tempofair_sim.cpp.o.d"
  "tempofair-sim"
  "tempofair-sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tempofair-sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
