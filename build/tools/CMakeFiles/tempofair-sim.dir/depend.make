# Empty dependencies file for tempofair-sim.
# This may be replaced when dependencies are built.
