file(REMOVE_RECURSE
  "../bench/exp_f2_instantaneous_fairness"
  "../bench/exp_f2_instantaneous_fairness.pdb"
  "CMakeFiles/exp_f2_instantaneous_fairness.dir/exp_f2_instantaneous_fairness.cpp.o"
  "CMakeFiles/exp_f2_instantaneous_fairness.dir/exp_f2_instantaneous_fairness.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_f2_instantaneous_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
