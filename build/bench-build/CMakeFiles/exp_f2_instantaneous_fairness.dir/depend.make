# Empty dependencies file for exp_f2_instantaneous_fairness.
# This may be replaced when dependencies are built.
