# Empty compiler generated dependencies file for exp_t7_wrr_ablation.
# This may be replaced when dependencies are built.
