file(REMOVE_RECURSE
  "../bench/exp_t7_wrr_ablation"
  "../bench/exp_t7_wrr_ablation.pdb"
  "CMakeFiles/exp_t7_wrr_ablation.dir/exp_t7_wrr_ablation.cpp.o"
  "CMakeFiles/exp_t7_wrr_ablation.dir/exp_t7_wrr_ablation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_t7_wrr_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
