# Empty dependencies file for exp_t6_quantum_rr.
# This may be replaced when dependencies are built.
