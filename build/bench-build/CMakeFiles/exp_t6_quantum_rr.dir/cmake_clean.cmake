file(REMOVE_RECURSE
  "../bench/exp_t6_quantum_rr"
  "../bench/exp_t6_quantum_rr.pdb"
  "CMakeFiles/exp_t6_quantum_rr.dir/exp_t6_quantum_rr.cpp.o"
  "CMakeFiles/exp_t6_quantum_rr.dir/exp_t6_quantum_rr.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_t6_quantum_rr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
