file(REMOVE_RECURSE
  "../bench/exp_f1_lowerbound_growth"
  "../bench/exp_f1_lowerbound_growth.pdb"
  "CMakeFiles/exp_f1_lowerbound_growth.dir/exp_f1_lowerbound_growth.cpp.o"
  "CMakeFiles/exp_f1_lowerbound_growth.dir/exp_f1_lowerbound_growth.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_f1_lowerbound_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
