# Empty dependencies file for exp_f1_lowerbound_growth.
# This may be replaced when dependencies are built.
