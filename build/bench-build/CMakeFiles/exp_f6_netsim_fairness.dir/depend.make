# Empty dependencies file for exp_f6_netsim_fairness.
# This may be replaced when dependencies are built.
