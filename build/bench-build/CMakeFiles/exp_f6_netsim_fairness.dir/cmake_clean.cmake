file(REMOVE_RECURSE
  "../bench/exp_f6_netsim_fairness"
  "../bench/exp_f6_netsim_fairness.pdb"
  "CMakeFiles/exp_f6_netsim_fairness.dir/exp_f6_netsim_fairness.cpp.o"
  "CMakeFiles/exp_f6_netsim_fairness.dir/exp_f6_netsim_fairness.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_f6_netsim_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
