file(REMOVE_RECURSE
  "../bench/exp_t4_dual_certificate"
  "../bench/exp_t4_dual_certificate.pdb"
  "CMakeFiles/exp_t4_dual_certificate.dir/exp_t4_dual_certificate.cpp.o"
  "CMakeFiles/exp_t4_dual_certificate.dir/exp_t4_dual_certificate.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_t4_dual_certificate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
