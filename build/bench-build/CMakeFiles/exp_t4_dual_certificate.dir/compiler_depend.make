# Empty compiler generated dependencies file for exp_t4_dual_certificate.
# This may be replaced when dependencies are built.
