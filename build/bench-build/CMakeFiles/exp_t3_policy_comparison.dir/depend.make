# Empty dependencies file for exp_t3_policy_comparison.
# This may be replaced when dependencies are built.
