file(REMOVE_RECURSE
  "../bench/exp_t3_policy_comparison"
  "../bench/exp_t3_policy_comparison.pdb"
  "CMakeFiles/exp_t3_policy_comparison.dir/exp_t3_policy_comparison.cpp.o"
  "CMakeFiles/exp_t3_policy_comparison.dir/exp_t3_policy_comparison.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_t3_policy_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
