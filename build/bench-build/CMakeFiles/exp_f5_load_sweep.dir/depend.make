# Empty dependencies file for exp_f5_load_sweep.
# This may be replaced when dependencies are built.
