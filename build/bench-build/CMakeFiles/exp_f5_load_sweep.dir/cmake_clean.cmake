file(REMOVE_RECURSE
  "../bench/exp_f5_load_sweep"
  "../bench/exp_f5_load_sweep.pdb"
  "CMakeFiles/exp_f5_load_sweep.dir/exp_f5_load_sweep.cpp.o"
  "CMakeFiles/exp_f5_load_sweep.dir/exp_f5_load_sweep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_f5_load_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
