# Empty dependencies file for exp_f8_fractional_gap.
# This may be replaced when dependencies are built.
