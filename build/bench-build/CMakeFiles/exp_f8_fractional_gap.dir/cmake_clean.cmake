file(REMOVE_RECURSE
  "../bench/exp_f8_fractional_gap"
  "../bench/exp_f8_fractional_gap.pdb"
  "CMakeFiles/exp_f8_fractional_gap.dir/exp_f8_fractional_gap.cpp.o"
  "CMakeFiles/exp_f8_fractional_gap.dir/exp_f8_fractional_gap.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_f8_fractional_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
