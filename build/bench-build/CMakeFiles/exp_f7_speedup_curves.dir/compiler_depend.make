# Empty compiler generated dependencies file for exp_f7_speedup_curves.
# This may be replaced when dependencies are built.
