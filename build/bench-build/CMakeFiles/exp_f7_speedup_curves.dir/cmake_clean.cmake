file(REMOVE_RECURSE
  "../bench/exp_f7_speedup_curves"
  "../bench/exp_f7_speedup_curves.pdb"
  "CMakeFiles/exp_f7_speedup_curves.dir/exp_f7_speedup_curves.cpp.o"
  "CMakeFiles/exp_f7_speedup_curves.dir/exp_f7_speedup_curves.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_f7_speedup_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
