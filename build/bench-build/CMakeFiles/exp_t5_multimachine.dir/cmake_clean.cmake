file(REMOVE_RECURSE
  "../bench/exp_t5_multimachine"
  "../bench/exp_t5_multimachine.pdb"
  "CMakeFiles/exp_t5_multimachine.dir/exp_t5_multimachine.cpp.o"
  "CMakeFiles/exp_t5_multimachine.dir/exp_t5_multimachine.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_t5_multimachine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
