file(REMOVE_RECURSE
  "../bench/exp_f4_speed_crossover"
  "../bench/exp_f4_speed_crossover.pdb"
  "CMakeFiles/exp_f4_speed_crossover.dir/exp_f4_speed_crossover.cpp.o"
  "CMakeFiles/exp_f4_speed_crossover.dir/exp_f4_speed_crossover.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_f4_speed_crossover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
