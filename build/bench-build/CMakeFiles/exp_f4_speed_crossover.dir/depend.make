# Empty dependencies file for exp_f4_speed_crossover.
# This may be replaced when dependencies are built.
