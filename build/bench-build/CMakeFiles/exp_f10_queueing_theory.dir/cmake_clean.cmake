file(REMOVE_RECURSE
  "../bench/exp_f10_queueing_theory"
  "../bench/exp_f10_queueing_theory.pdb"
  "CMakeFiles/exp_f10_queueing_theory.dir/exp_f10_queueing_theory.cpp.o"
  "CMakeFiles/exp_f10_queueing_theory.dir/exp_f10_queueing_theory.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_f10_queueing_theory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
