# Empty dependencies file for exp_f10_queueing_theory.
# This may be replaced when dependencies are built.
