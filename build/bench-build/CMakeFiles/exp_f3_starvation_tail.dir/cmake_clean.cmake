file(REMOVE_RECURSE
  "../bench/exp_f3_starvation_tail"
  "../bench/exp_f3_starvation_tail.pdb"
  "CMakeFiles/exp_f3_starvation_tail.dir/exp_f3_starvation_tail.cpp.o"
  "CMakeFiles/exp_f3_starvation_tail.dir/exp_f3_starvation_tail.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_f3_starvation_tail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
