# Empty dependencies file for exp_f3_starvation_tail.
# This may be replaced when dependencies are built.
