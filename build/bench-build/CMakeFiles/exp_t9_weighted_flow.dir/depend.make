# Empty dependencies file for exp_t9_weighted_flow.
# This may be replaced when dependencies are built.
