file(REMOVE_RECURSE
  "../bench/exp_t9_weighted_flow"
  "../bench/exp_t9_weighted_flow.pdb"
  "CMakeFiles/exp_t9_weighted_flow.dir/exp_t9_weighted_flow.cpp.o"
  "CMakeFiles/exp_t9_weighted_flow.dir/exp_t9_weighted_flow.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_t9_weighted_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
