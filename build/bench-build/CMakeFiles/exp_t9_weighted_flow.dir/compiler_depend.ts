# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for exp_t9_weighted_flow.
