# Empty compiler generated dependencies file for exp_f9_related_machines.
# This may be replaced when dependencies are built.
