file(REMOVE_RECURSE
  "../bench/exp_f9_related_machines"
  "../bench/exp_f9_related_machines.pdb"
  "CMakeFiles/exp_f9_related_machines.dir/exp_f9_related_machines.cpp.o"
  "CMakeFiles/exp_f9_related_machines.dir/exp_f9_related_machines.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_f9_related_machines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
