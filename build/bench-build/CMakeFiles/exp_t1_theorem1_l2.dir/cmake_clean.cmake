file(REMOVE_RECURSE
  "../bench/exp_t1_theorem1_l2"
  "../bench/exp_t1_theorem1_l2.pdb"
  "CMakeFiles/exp_t1_theorem1_l2.dir/exp_t1_theorem1_l2.cpp.o"
  "CMakeFiles/exp_t1_theorem1_l2.dir/exp_t1_theorem1_l2.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_t1_theorem1_l2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
