# Empty dependencies file for exp_t1_theorem1_l2.
# This may be replaced when dependencies are built.
