file(REMOVE_RECURSE
  "../bench/exp_a2_lp_resolution"
  "../bench/exp_a2_lp_resolution.pdb"
  "CMakeFiles/exp_a2_lp_resolution.dir/exp_a2_lp_resolution.cpp.o"
  "CMakeFiles/exp_a2_lp_resolution.dir/exp_a2_lp_resolution.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_a2_lp_resolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
