# Empty compiler generated dependencies file for exp_a2_lp_resolution.
# This may be replaced when dependencies are built.
