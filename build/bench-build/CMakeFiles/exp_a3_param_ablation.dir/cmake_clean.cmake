file(REMOVE_RECURSE
  "../bench/exp_a3_param_ablation"
  "../bench/exp_a3_param_ablation.pdb"
  "CMakeFiles/exp_a3_param_ablation.dir/exp_a3_param_ablation.cpp.o"
  "CMakeFiles/exp_a3_param_ablation.dir/exp_a3_param_ablation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_a3_param_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
