# Empty dependencies file for exp_a3_param_ablation.
# This may be replaced when dependencies are built.
