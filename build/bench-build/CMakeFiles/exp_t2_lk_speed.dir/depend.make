# Empty dependencies file for exp_t2_lk_speed.
# This may be replaced when dependencies are built.
