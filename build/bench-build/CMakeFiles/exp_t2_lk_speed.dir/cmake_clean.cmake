file(REMOVE_RECURSE
  "../bench/exp_t2_lk_speed"
  "../bench/exp_t2_lk_speed.pdb"
  "CMakeFiles/exp_t2_lk_speed.dir/exp_t2_lk_speed.cpp.o"
  "CMakeFiles/exp_t2_lk_speed.dir/exp_t2_lk_speed.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_t2_lk_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
