file(REMOVE_RECURSE
  "../bench/exp_t8_lp_sanity"
  "../bench/exp_t8_lp_sanity.pdb"
  "CMakeFiles/exp_t8_lp_sanity.dir/exp_t8_lp_sanity.cpp.o"
  "CMakeFiles/exp_t8_lp_sanity.dir/exp_t8_lp_sanity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_t8_lp_sanity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
