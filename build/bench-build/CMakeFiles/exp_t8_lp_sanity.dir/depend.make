# Empty dependencies file for exp_t8_lp_sanity.
# This may be replaced when dependencies are built.
