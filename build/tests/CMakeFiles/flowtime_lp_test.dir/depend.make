# Empty dependencies file for flowtime_lp_test.
# This may be replaced when dependencies are built.
