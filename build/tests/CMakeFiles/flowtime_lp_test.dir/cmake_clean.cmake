file(REMOVE_RECURSE
  "CMakeFiles/flowtime_lp_test.dir/lpsolve/flowtime_lp_test.cpp.o"
  "CMakeFiles/flowtime_lp_test.dir/lpsolve/flowtime_lp_test.cpp.o.d"
  "flowtime_lp_test"
  "flowtime_lp_test.pdb"
  "flowtime_lp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flowtime_lp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
