# Empty compiler generated dependencies file for mlfq_test.
# This may be replaced when dependencies are built.
