file(REMOVE_RECURSE
  "CMakeFiles/mlfq_test.dir/policies/mlfq_test.cpp.o"
  "CMakeFiles/mlfq_test.dir/policies/mlfq_test.cpp.o.d"
  "mlfq_test"
  "mlfq_test.pdb"
  "mlfq_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlfq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
