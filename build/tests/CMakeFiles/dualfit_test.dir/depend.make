# Empty dependencies file for dualfit_test.
# This may be replaced when dependencies are built.
