file(REMOVE_RECURSE
  "CMakeFiles/dualfit_test.dir/analysis/dualfit_test.cpp.o"
  "CMakeFiles/dualfit_test.dir/analysis/dualfit_test.cpp.o.d"
  "dualfit_test"
  "dualfit_test.pdb"
  "dualfit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dualfit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
