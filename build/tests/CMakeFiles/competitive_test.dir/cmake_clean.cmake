file(REMOVE_RECURSE
  "CMakeFiles/competitive_test.dir/analysis/competitive_test.cpp.o"
  "CMakeFiles/competitive_test.dir/analysis/competitive_test.cpp.o.d"
  "competitive_test"
  "competitive_test.pdb"
  "competitive_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/competitive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
