# Empty compiler generated dependencies file for mincost_flow_test.
# This may be replaced when dependencies are built.
