file(REMOVE_RECURSE
  "CMakeFiles/mincost_flow_test.dir/lpsolve/mincost_flow_test.cpp.o"
  "CMakeFiles/mincost_flow_test.dir/lpsolve/mincost_flow_test.cpp.o.d"
  "mincost_flow_test"
  "mincost_flow_test.pdb"
  "mincost_flow_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mincost_flow_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
