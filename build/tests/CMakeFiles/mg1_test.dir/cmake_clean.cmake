file(REMOVE_RECURSE
  "CMakeFiles/mg1_test.dir/queueing/mg1_test.cpp.o"
  "CMakeFiles/mg1_test.dir/queueing/mg1_test.cpp.o.d"
  "mg1_test"
  "mg1_test.pdb"
  "mg1_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mg1_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
