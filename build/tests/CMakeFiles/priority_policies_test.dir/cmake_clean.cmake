file(REMOVE_RECURSE
  "CMakeFiles/priority_policies_test.dir/policies/priority_policies_test.cpp.o"
  "CMakeFiles/priority_policies_test.dir/policies/priority_policies_test.cpp.o.d"
  "priority_policies_test"
  "priority_policies_test.pdb"
  "priority_policies_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/priority_policies_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
