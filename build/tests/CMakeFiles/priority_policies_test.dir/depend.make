# Empty dependencies file for priority_policies_test.
# This may be replaced when dependencies are built.
