# Empty dependencies file for setf_test.
# This may be replaced when dependencies are built.
