file(REMOVE_RECURSE
  "CMakeFiles/setf_test.dir/policies/setf_test.cpp.o"
  "CMakeFiles/setf_test.dir/policies/setf_test.cpp.o.d"
  "setf_test"
  "setf_test.pdb"
  "setf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/setf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
