file(REMOVE_RECURSE
  "CMakeFiles/trace_structure_test.dir/core/trace_structure_test.cpp.o"
  "CMakeFiles/trace_structure_test.dir/core/trace_structure_test.cpp.o.d"
  "trace_structure_test"
  "trace_structure_test.pdb"
  "trace_structure_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_structure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
