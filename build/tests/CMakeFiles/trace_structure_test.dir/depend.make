# Empty dependencies file for trace_structure_test.
# This may be replaced when dependencies are built.
