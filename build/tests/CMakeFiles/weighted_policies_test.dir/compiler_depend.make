# Empty compiler generated dependencies file for weighted_policies_test.
# This may be replaced when dependencies are built.
