file(REMOVE_RECURSE
  "CMakeFiles/weighted_policies_test.dir/policies/weighted_policies_test.cpp.o"
  "CMakeFiles/weighted_policies_test.dir/policies/weighted_policies_test.cpp.o.d"
  "weighted_policies_test"
  "weighted_policies_test.pdb"
  "weighted_policies_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weighted_policies_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
