# Empty dependencies file for parsim_test.
# This may be replaced when dependencies are built.
