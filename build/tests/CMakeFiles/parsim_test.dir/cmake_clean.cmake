file(REMOVE_RECURSE
  "CMakeFiles/parsim_test.dir/parsim/parsim_test.cpp.o"
  "CMakeFiles/parsim_test.dir/parsim/parsim_test.cpp.o.d"
  "parsim_test"
  "parsim_test.pdb"
  "parsim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parsim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
