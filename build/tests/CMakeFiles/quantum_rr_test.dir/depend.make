# Empty dependencies file for quantum_rr_test.
# This may be replaced when dependencies are built.
