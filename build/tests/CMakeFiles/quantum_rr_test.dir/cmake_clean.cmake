file(REMOVE_RECURSE
  "CMakeFiles/quantum_rr_test.dir/policies/quantum_rr_test.cpp.o"
  "CMakeFiles/quantum_rr_test.dir/policies/quantum_rr_test.cpp.o.d"
  "quantum_rr_test"
  "quantum_rr_test.pdb"
  "quantum_rr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quantum_rr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
