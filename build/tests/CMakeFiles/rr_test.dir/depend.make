# Empty dependencies file for rr_test.
# This may be replaced when dependencies are built.
