file(REMOVE_RECURSE
  "CMakeFiles/relsim_test.dir/relsim/relsim_test.cpp.o"
  "CMakeFiles/relsim_test.dir/relsim/relsim_test.cpp.o.d"
  "relsim_test"
  "relsim_test.pdb"
  "relsim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relsim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
