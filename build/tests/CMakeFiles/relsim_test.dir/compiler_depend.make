# Empty compiler generated dependencies file for relsim_test.
# This may be replaced when dependencies are built.
