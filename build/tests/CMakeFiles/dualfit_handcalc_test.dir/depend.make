# Empty dependencies file for dualfit_handcalc_test.
# This may be replaced when dependencies are built.
