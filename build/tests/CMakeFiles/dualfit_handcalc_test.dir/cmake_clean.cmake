file(REMOVE_RECURSE
  "CMakeFiles/dualfit_handcalc_test.dir/analysis/dualfit_handcalc_test.cpp.o"
  "CMakeFiles/dualfit_handcalc_test.dir/analysis/dualfit_handcalc_test.cpp.o.d"
  "dualfit_handcalc_test"
  "dualfit_handcalc_test.pdb"
  "dualfit_handcalc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dualfit_handcalc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
