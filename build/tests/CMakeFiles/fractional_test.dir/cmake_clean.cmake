file(REMOVE_RECURSE
  "CMakeFiles/fractional_test.dir/core/fractional_test.cpp.o"
  "CMakeFiles/fractional_test.dir/core/fractional_test.cpp.o.d"
  "fractional_test"
  "fractional_test.pdb"
  "fractional_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fractional_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
