file(REMOVE_RECURSE
  "CMakeFiles/speedup_curves.dir/speedup_curves.cpp.o"
  "CMakeFiles/speedup_curves.dir/speedup_curves.cpp.o.d"
  "speedup_curves"
  "speedup_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speedup_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
