# Empty dependencies file for speedup_curves.
# This may be replaced when dependencies are built.
