file(REMOVE_RECURSE
  "CMakeFiles/adversarial_analysis.dir/adversarial_analysis.cpp.o"
  "CMakeFiles/adversarial_analysis.dir/adversarial_analysis.cpp.o.d"
  "adversarial_analysis"
  "adversarial_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adversarial_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
