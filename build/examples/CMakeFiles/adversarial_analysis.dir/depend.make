# Empty dependencies file for adversarial_analysis.
# This may be replaced when dependencies are built.
