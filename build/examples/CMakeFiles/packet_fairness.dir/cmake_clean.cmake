file(REMOVE_RECURSE
  "CMakeFiles/packet_fairness.dir/packet_fairness.cpp.o"
  "CMakeFiles/packet_fairness.dir/packet_fairness.cpp.o.d"
  "packet_fairness"
  "packet_fairness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/packet_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
