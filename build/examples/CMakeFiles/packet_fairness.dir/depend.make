# Empty dependencies file for packet_fairness.
# This may be replaced when dependencies are built.
