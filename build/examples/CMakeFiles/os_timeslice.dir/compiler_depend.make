# Empty compiler generated dependencies file for os_timeslice.
# This may be replaced when dependencies are built.
