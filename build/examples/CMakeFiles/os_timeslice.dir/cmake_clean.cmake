file(REMOVE_RECURSE
  "CMakeFiles/os_timeslice.dir/os_timeslice.cpp.o"
  "CMakeFiles/os_timeslice.dir/os_timeslice.cpp.o.d"
  "os_timeslice"
  "os_timeslice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/os_timeslice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
