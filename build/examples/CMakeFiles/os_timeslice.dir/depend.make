# Empty dependencies file for os_timeslice.
# This may be replaced when dependencies are built.
