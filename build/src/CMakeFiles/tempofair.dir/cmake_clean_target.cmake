file(REMOVE_RECURSE
  "libtempofair.a"
)
