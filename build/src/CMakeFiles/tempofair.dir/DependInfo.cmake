
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/competitive.cpp" "src/CMakeFiles/tempofair.dir/analysis/competitive.cpp.o" "gcc" "src/CMakeFiles/tempofair.dir/analysis/competitive.cpp.o.d"
  "/root/repo/src/analysis/dualfit.cpp" "src/CMakeFiles/tempofair.dir/analysis/dualfit.cpp.o" "gcc" "src/CMakeFiles/tempofair.dir/analysis/dualfit.cpp.o.d"
  "/root/repo/src/analysis/report.cpp" "src/CMakeFiles/tempofair.dir/analysis/report.cpp.o" "gcc" "src/CMakeFiles/tempofair.dir/analysis/report.cpp.o.d"
  "/root/repo/src/core/engine.cpp" "src/CMakeFiles/tempofair.dir/core/engine.cpp.o" "gcc" "src/CMakeFiles/tempofair.dir/core/engine.cpp.o.d"
  "/root/repo/src/core/fairness.cpp" "src/CMakeFiles/tempofair.dir/core/fairness.cpp.o" "gcc" "src/CMakeFiles/tempofair.dir/core/fairness.cpp.o.d"
  "/root/repo/src/core/fractional.cpp" "src/CMakeFiles/tempofair.dir/core/fractional.cpp.o" "gcc" "src/CMakeFiles/tempofair.dir/core/fractional.cpp.o.d"
  "/root/repo/src/core/instance.cpp" "src/CMakeFiles/tempofair.dir/core/instance.cpp.o" "gcc" "src/CMakeFiles/tempofair.dir/core/instance.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/CMakeFiles/tempofair.dir/core/metrics.cpp.o" "gcc" "src/CMakeFiles/tempofair.dir/core/metrics.cpp.o.d"
  "/root/repo/src/core/schedule.cpp" "src/CMakeFiles/tempofair.dir/core/schedule.cpp.o" "gcc" "src/CMakeFiles/tempofair.dir/core/schedule.cpp.o.d"
  "/root/repo/src/harness/cli.cpp" "src/CMakeFiles/tempofair.dir/harness/cli.cpp.o" "gcc" "src/CMakeFiles/tempofair.dir/harness/cli.cpp.o.d"
  "/root/repo/src/harness/sweep.cpp" "src/CMakeFiles/tempofair.dir/harness/sweep.cpp.o" "gcc" "src/CMakeFiles/tempofair.dir/harness/sweep.cpp.o.d"
  "/root/repo/src/harness/thread_pool.cpp" "src/CMakeFiles/tempofair.dir/harness/thread_pool.cpp.o" "gcc" "src/CMakeFiles/tempofair.dir/harness/thread_pool.cpp.o.d"
  "/root/repo/src/lpsolve/flowtime_lp.cpp" "src/CMakeFiles/tempofair.dir/lpsolve/flowtime_lp.cpp.o" "gcc" "src/CMakeFiles/tempofair.dir/lpsolve/flowtime_lp.cpp.o.d"
  "/root/repo/src/lpsolve/lower_bounds.cpp" "src/CMakeFiles/tempofair.dir/lpsolve/lower_bounds.cpp.o" "gcc" "src/CMakeFiles/tempofair.dir/lpsolve/lower_bounds.cpp.o.d"
  "/root/repo/src/lpsolve/mincost_flow.cpp" "src/CMakeFiles/tempofair.dir/lpsolve/mincost_flow.cpp.o" "gcc" "src/CMakeFiles/tempofair.dir/lpsolve/mincost_flow.cpp.o.d"
  "/root/repo/src/lpsolve/simplex.cpp" "src/CMakeFiles/tempofair.dir/lpsolve/simplex.cpp.o" "gcc" "src/CMakeFiles/tempofair.dir/lpsolve/simplex.cpp.o.d"
  "/root/repo/src/netsim/drr.cpp" "src/CMakeFiles/tempofair.dir/netsim/drr.cpp.o" "gcc" "src/CMakeFiles/tempofair.dir/netsim/drr.cpp.o.d"
  "/root/repo/src/netsim/fifo.cpp" "src/CMakeFiles/tempofair.dir/netsim/fifo.cpp.o" "gcc" "src/CMakeFiles/tempofair.dir/netsim/fifo.cpp.o.d"
  "/root/repo/src/netsim/link_sim.cpp" "src/CMakeFiles/tempofair.dir/netsim/link_sim.cpp.o" "gcc" "src/CMakeFiles/tempofair.dir/netsim/link_sim.cpp.o.d"
  "/root/repo/src/netsim/wfq.cpp" "src/CMakeFiles/tempofair.dir/netsim/wfq.cpp.o" "gcc" "src/CMakeFiles/tempofair.dir/netsim/wfq.cpp.o.d"
  "/root/repo/src/parsim/parsim.cpp" "src/CMakeFiles/tempofair.dir/parsim/parsim.cpp.o" "gcc" "src/CMakeFiles/tempofair.dir/parsim/parsim.cpp.o.d"
  "/root/repo/src/policies/fcfs.cpp" "src/CMakeFiles/tempofair.dir/policies/fcfs.cpp.o" "gcc" "src/CMakeFiles/tempofair.dir/policies/fcfs.cpp.o.d"
  "/root/repo/src/policies/laps.cpp" "src/CMakeFiles/tempofair.dir/policies/laps.cpp.o" "gcc" "src/CMakeFiles/tempofair.dir/policies/laps.cpp.o.d"
  "/root/repo/src/policies/mlfq.cpp" "src/CMakeFiles/tempofair.dir/policies/mlfq.cpp.o" "gcc" "src/CMakeFiles/tempofair.dir/policies/mlfq.cpp.o.d"
  "/root/repo/src/policies/quantum_rr.cpp" "src/CMakeFiles/tempofair.dir/policies/quantum_rr.cpp.o" "gcc" "src/CMakeFiles/tempofair.dir/policies/quantum_rr.cpp.o.d"
  "/root/repo/src/policies/registry.cpp" "src/CMakeFiles/tempofair.dir/policies/registry.cpp.o" "gcc" "src/CMakeFiles/tempofair.dir/policies/registry.cpp.o.d"
  "/root/repo/src/policies/round_robin.cpp" "src/CMakeFiles/tempofair.dir/policies/round_robin.cpp.o" "gcc" "src/CMakeFiles/tempofair.dir/policies/round_robin.cpp.o.d"
  "/root/repo/src/policies/setf.cpp" "src/CMakeFiles/tempofair.dir/policies/setf.cpp.o" "gcc" "src/CMakeFiles/tempofair.dir/policies/setf.cpp.o.d"
  "/root/repo/src/policies/sjf.cpp" "src/CMakeFiles/tempofair.dir/policies/sjf.cpp.o" "gcc" "src/CMakeFiles/tempofair.dir/policies/sjf.cpp.o.d"
  "/root/repo/src/policies/srpt.cpp" "src/CMakeFiles/tempofair.dir/policies/srpt.cpp.o" "gcc" "src/CMakeFiles/tempofair.dir/policies/srpt.cpp.o.d"
  "/root/repo/src/policies/weighted_policies.cpp" "src/CMakeFiles/tempofair.dir/policies/weighted_policies.cpp.o" "gcc" "src/CMakeFiles/tempofair.dir/policies/weighted_policies.cpp.o.d"
  "/root/repo/src/policies/weighted_rr.cpp" "src/CMakeFiles/tempofair.dir/policies/weighted_rr.cpp.o" "gcc" "src/CMakeFiles/tempofair.dir/policies/weighted_rr.cpp.o.d"
  "/root/repo/src/queueing/mg1.cpp" "src/CMakeFiles/tempofair.dir/queueing/mg1.cpp.o" "gcc" "src/CMakeFiles/tempofair.dir/queueing/mg1.cpp.o.d"
  "/root/repo/src/relsim/relsim.cpp" "src/CMakeFiles/tempofair.dir/relsim/relsim.cpp.o" "gcc" "src/CMakeFiles/tempofair.dir/relsim/relsim.cpp.o.d"
  "/root/repo/src/workload/adversarial.cpp" "src/CMakeFiles/tempofair.dir/workload/adversarial.cpp.o" "gcc" "src/CMakeFiles/tempofair.dir/workload/adversarial.cpp.o.d"
  "/root/repo/src/workload/generators.cpp" "src/CMakeFiles/tempofair.dir/workload/generators.cpp.o" "gcc" "src/CMakeFiles/tempofair.dir/workload/generators.cpp.o.d"
  "/root/repo/src/workload/rng.cpp" "src/CMakeFiles/tempofair.dir/workload/rng.cpp.o" "gcc" "src/CMakeFiles/tempofair.dir/workload/rng.cpp.o.d"
  "/root/repo/src/workload/trace_io.cpp" "src/CMakeFiles/tempofair.dir/workload/trace_io.cpp.o" "gcc" "src/CMakeFiles/tempofair.dir/workload/trace_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
