# Empty compiler generated dependencies file for tempofair.
# This may be replaced when dependencies are built.
