#!/usr/bin/env bash
# Loopback smoke test for tempofaird: start the daemon on an ephemeral TCP
# port, push a generated workload through tempofair_client (chunked, with a
# live watch), and shut the daemon down cleanly.  Exercises the full
# socket -> frame -> engine -> result path the way a production client would.
#
# Usage: scripts/daemon_smoke.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"

tmpdir="$(mktemp -d)"
daemon_pid=""
cleanup() {
  if [[ -n "$daemon_pid" ]] && kill -0 "$daemon_pid" 2>/dev/null; then
    kill -TERM "$daemon_pid" 2>/dev/null || true
    wait "$daemon_pid" 2>/dev/null || true
  fi
  rm -rf "$tmpdir"
}
trap cleanup EXIT

"$BUILD/tools/tempofair-sim" generate --out "$tmpdir/jobs.csv" \
  --workload poisson --n 2000 --load 0.9 --seed 3

# --port 0 binds an ephemeral port and prints it on stdout.
"$BUILD/tools/tempofaird" --port 0 --quiet > "$tmpdir/port.txt" &
daemon_pid=$!

port=""
for _ in $(seq 1 100); do
  port="$(cat "$tmpdir/port.txt" 2>/dev/null || true)"
  [[ -n "$port" ]] && break
  sleep 0.05
done
if [[ -z "$port" ]]; then
  echo "daemon_smoke: daemon never printed its port" >&2
  exit 1
fi
echo "daemon_smoke: daemon on port $port (pid $daemon_pid)"

"$BUILD/tools/tempofair_client" \
  --port "$port" --tenant smoke --instance "$tmpdir/jobs.csv" \
  --policy rr --no-trace --chunk 300 --k 2 --watch --show-stats \
  | tee "$tmpdir/client.out"

grep -q "l2" "$tmpdir/client.out" || {
  echo "daemon_smoke: client output missing flow stats" >&2
  exit 1
}

kill -TERM "$daemon_pid"
wait "$daemon_pid"
daemon_pid=""
echo "daemon_smoke: OK"
