#!/usr/bin/env bash
# Header self-containment lint: every public header under src/ must compile
# as the sole content of a translation unit.  A header that sneaks a
# dependency in through its includer's include order breaks exactly this
# check, so running it in CI keeps "include what you use" true for the
# library's entire public surface.
#
# Also enforces the SIMD shim confinement: core/simd.h is the ONLY file in
# the tree allowed to include <immintrin.h> (its vector paths are
# compile-time gated, so every header here -- simd.h included -- must also
# build cleanly without any -m arch flags, which this lint's plain
# invocation checks for free).
#
# Usage: scripts/header_lint.sh [compiler]   (default: c++)
set -euo pipefail

cd "$(dirname "$0")/.."
CXX="${1:-${CXX:-c++}}"

# --- intrinsics confinement -------------------------------------------------
confinement_failures=0
while IFS= read -r offender; do
  if [ "$offender" != "src/core/simd.h" ]; then
    echo "IMMINTRIN OUTSIDE THE SHIM: $offender (include core/simd.h instead)"
    confinement_failures=$((confinement_failures + 1))
  fi
done < <(grep -rl '#include <immintrin.h>' src tests bench tools examples \
         --include='*.h' --include='*.cpp' 2>/dev/null | sort)
if ! grep -q '#include <immintrin.h>' src/core/simd.h; then
  echo "EXPECTED src/core/simd.h to be the immintrin shim; include not found"
  confinement_failures=$((confinement_failures + 1))
fi

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

failures=0
checked=0
while IFS= read -r header; do
  rel="${header#src/}"
  tu="$tmpdir/tu.cpp"
  printf '#include "%s"\n' "$rel" > "$tu"
  checked=$((checked + 1))
  if ! "$CXX" -std=c++20 -fsyntax-only -Isrc -Wall -Wextra -Werror "$tu" \
      2> "$tmpdir/err.txt"; then
    failures=$((failures + 1))
    echo "NOT SELF-CONTAINED: $header"
    sed 's/^/    /' "$tmpdir/err.txt"
  fi
done < <(find src -name '*.h' | sort)

failures=$((failures + confinement_failures))
echo "header_lint: $checked headers checked, $failures failures"
exit "$((failures > 0 ? 1 : 0))"
