#!/usr/bin/env bash
# Header self-containment lint: every public header under src/ must compile
# as the sole content of a translation unit.  A header that sneaks a
# dependency in through its includer's include order breaks exactly this
# check, so running it in CI keeps "include what you use" true for the
# library's entire public surface.
#
# Usage: scripts/header_lint.sh [compiler]   (default: c++)
set -euo pipefail

cd "$(dirname "$0")/.."
CXX="${1:-${CXX:-c++}}"

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

failures=0
checked=0
while IFS= read -r header; do
  rel="${header#src/}"
  tu="$tmpdir/tu.cpp"
  printf '#include "%s"\n' "$rel" > "$tu"
  checked=$((checked + 1))
  if ! "$CXX" -std=c++20 -fsyntax-only -Isrc -Wall -Wextra -Werror "$tu" \
      2> "$tmpdir/err.txt"; then
    failures=$((failures + 1))
    echo "NOT SELF-CONTAINED: $header"
    sed 's/^/    /' "$tmpdir/err.txt"
  fi
done < <(find src -name '*.h' | sort)

echo "header_lint: $checked headers checked, $failures failures"
exit "$((failures > 0 ? 1 : 0))"
